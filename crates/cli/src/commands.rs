//! CLI subcommands.
//!
//! Scheduler selection goes through `sptrsv_core::registry`: `--algo` takes
//! a full spec string in the v2 grammar (`growlocal`,
//! `growlocal:alpha=8,sync=2000`, `funnel-gl:gl.alpha=8,cap=auto`,
//! `growlocal@async`, …) and `sptrsv algos` prints the registry listing —
//! the CLI itself hardcodes no scheduler names and no execution models; the
//! `@model` suffix routes `solve` and `simulate` through the matching
//! executor/simulation mode.

use crate::args::Args;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sptrsv_core::registry::{self, GrantPolicy, SchedulerSpec};
use sptrsv_core::CompiledSchedule;
use sptrsv_dag::{wavefronts, SolveDag};
use sptrsv_exec::{
    simulate_model, simulate_serial, CacheOutcome, MachineProfile, Orientation, PlanBuilder,
    PreOrder,
};
use sptrsv_serve::{Admission, ServeBuilder, SubmitError};
use sptrsv_sparse::csr::Triangle;
use sptrsv_sparse::gen;
use sptrsv_sparse::io::{read_matrix_market_file, write_matrix_market_file};
use sptrsv_sparse::linalg::relative_residual;
use sptrsv_sparse::CsrMatrix;
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage: sptrsv <command> [args]

commands:
  generate <grid2d|grid3d|er|nb> [--width W --height H --depth D]
           [--n N --rate R --prob P --band B] [--seed S] -o <file.mtx>
  info     <file.mtx>
  algos    list schedulers and their spec parameters
  schedule <file.mtx> [--algo SPEC] [--cores K] [-o <file.sched>]
  solve    <file.mtx> [--algo SPEC] [--cores K] [--no-reorder true]
           [--pre-order rcm|min-degree|nested-dissection] [--coarsen true]
           [--repeat N] [--grant greedy|fair|cap=K] [--elastic on|off]
           [--shrink on|off] [--fastmath on|off] [--plan-cache DIR]
  plan     <file.mtx> [--algo SPEC] [--cores K] [--no-reorder true]
           [--pre-order rcm|min-degree|nested-dissection] [--coarsen true]
           [--save <file.plan>] [--load <file.plan>] [--plan-cache DIR]
  simulate <file.mtx> [--algo SPEC] [--cores K] [--machine intel|amd|arm]
           [--grant greedy|fair|cap=K] [--elastic on|off] [--shrink on|off]
           [--fastmath on|off]
  tune     <file.mtx> [--algo auto[:key=...][@model]] [--cores K]
           [--budget N] [--measure on|off] [--cache DIR]
  serve-bench <file.mtx> [--algo SPEC] [--cores K] [--batch N]
           [--batch-wait-us U] [--clients C] [--requests R] [--depth D]
           [--admission block|shed] [--grant greedy|fair|cap=K]
           [--elastic on|off] [--shrink on|off] [--fastmath on|off]
           [--plan-cache DIR]

--algo takes a scheduler spec in the grammar name[:key=value,...][@model]:
a name from `sptrsv algos`, optional parameters (scoped keys like gl.alpha
reach a composite scheduler's inner GrowLocal; sync=full|reduced,
backoff=spin|yield, cores=N, grant=greedy|fair|cap=K, elastic=on|off,
shrink=on|off, fastmath=on|off, batch=N and batch_wait_us=U address the
execution policy
on any scheduler) and an
optional execution model, e.g. growlocal:alpha=8,sync=2000,
funnel-gl:gl.alpha=8,cap=auto, growlocal:sync=full@async,
spmp:backoff=yield or growlocal:grant=fair,elastic=on. Explicit
--cores/--grant/--elastic/--shrink/--fastmath flags override the spec's
keys.
Parallel solves lease their threads per solve from the process-wide solver
runtime (sized to the hardware), so concurrent solves never oversubscribe
the machine — a solve wider than the free capacity degrades gracefully to
fewer cores; --grant bounds each tenant's share (fair = capacity/tenants)
and --elastic on lets a barrier solve grow back at superstep boundaries as
cores free up. --shrink on makes the resize symmetric: when a tenant joins
and the fair share drops, a wide elastic solve sheds cores at the next
boundary so fairness is retroactive, not just for future admissions.
--fastmath on routes the solve through detected dense-block / lane-unrolled
row kernels with precomputed diagonal reciprocals: the one policy that can
change results (agreement with the exact path to 1e-12 relative tolerance
instead of bit-for-bit).
--repeat N runs N steady-state solves on one plan (leases dispatch onto
already-running runtime workers without re-spawning threads) and checks
they are bit-identical.
serve-bench starts a batching solve server over the plan (the sptrsv-serve
front-end): C closed-loop clients each submit R single right-hand sides,
a batcher thread fuses up to batch=N queued requests into one multi-RHS
solve after lingering at most batch_wait_us microseconds, and admission
control engages at queue depth D (block stalls submitters, shed bounces
them). Every response is verified against the standalone solve, then the
achieved batch widths, latency percentiles and goodput are printed.
--batch/--batch-wait-us override the spec's batch keys.
--plan-cache DIR enables warm starts: a cold build saves its compiled
schedule to DIR under a content fingerprint of (matrix structure,
scheduler spec, cores, coarsen, reorder); later runs with the same key
load the file and skip scheduling entirely. A stale, truncated or
mismatched file is rejected with an error, never silently mis-solved.
plan_cache=DIR is the equivalent spec key on any scheduler. solve,
plan and serve-bench print the outcome as a `plan cache:` line (one of
uncached, miss (stored), memory hit, disk hit). `plan` builds and
verifies one plan without the full solve report; --save writes its
scheduling artifact to an explicit file and --load builds from one
(the file must match the matrix and build flags, enforced by the
fingerprint).
--algo auto turns scheduler selection over to the tuner on any command
that takes a spec: features of the matrix prune the registry's
(scheduler, model) pairs, the survivors are scheduled and ranked by
modeled cycles, and the winner is built (printed as an `auto picked:`
line). Scope keys parameterize it — auto:budget=N bounds how many
candidates are scheduled, auto:measure=on adds a timed refinement of the
top ranks, auto:cache=DIR persists the verdict under the matrix's
structure fingerprint so later runs skip tuning (a corrupt or foreign
verdict file is an error, never a wrong pick) — and any execution-policy
key (auto:cores=4,fastmath=on) passes through to the winner. `sptrsv
tune` runs the same pipeline standalone and prints the full ranked
table; its --budget/--measure/--cache flags override the spec keys.";

/// Dispatches a full argv (after the program name).
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some(command) = argv.first() else {
        return Err(format!("no command given\n{USAGE}"));
    };
    let args = Args::parse(&argv[1..])?;
    match command.as_str() {
        "generate" => generate(&args),
        "info" => info(&args),
        "algos" => algos(),
        "schedule" => schedule(&args),
        "solve" => solve(&args),
        "plan" => plan_cmd(&args),
        "simulate" => simulate(&args),
        "tune" => tune(&args),
        "serve-bench" => serve_bench(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

/// Loads a matrix and extracts its lower triangle (reporting what happened).
fn load_lower(path: &str) -> Result<CsrMatrix, String> {
    let m = read_matrix_market_file(path).map_err(|e| format!("{path}: {e}"))?;
    if m.is_lower_triangular() {
        m.validate_triangular(Triangle::Lower).map_err(|e| e.to_string())?;
        Ok(m)
    } else {
        eprintln!("note: {path} is not lower triangular; using its lower triangle");
        let l = m.lower_triangle().map_err(|e| e.to_string())?;
        l.validate_triangular(Triangle::Lower).map_err(|e| e.to_string())?;
        Ok(l)
    }
}

fn generate(args: &Args) -> Result<(), String> {
    let kind = args.require_positional(0, "generator kind")?;
    let seed: u64 = args.get_parse("seed", 42)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let matrix = match kind {
        "grid2d" => {
            let w: usize = args.get_parse("width", 64)?;
            let h: usize = args.get_parse("height", 64)?;
            gen::grid::grid2d_laplacian(w, h, gen::grid::Stencil2D::FivePoint, 0.5)
        }
        "grid3d" => {
            let w: usize = args.get_parse("width", 16)?;
            let h: usize = args.get_parse("height", 16)?;
            let d: usize = args.get_parse("depth", 16)?;
            gen::grid::grid3d_laplacian(w, h, d, gen::grid::Stencil3D::SevenPoint, 0.5)
        }
        "er" => {
            let n: usize = args.get_parse("n", 10_000)?;
            let rate: f64 = args.get_parse("rate", 10.0)?;
            let p = (2.0 * rate / (n as f64 - 1.0)).min(1.0);
            gen::erdos_renyi::erdos_renyi_lower(n, p, &mut rng)
        }
        "nb" => {
            let n: usize = args.get_parse("n", 10_000)?;
            let p: f64 = args.get_parse("prob", 0.14)?;
            let b: f64 = args.get_parse("band", 10.0)?;
            gen::narrow_band::narrow_band_lower(n, p, b, &mut rng)
        }
        other => return Err(format!("unknown generator `{other}`")),
    };
    let out = args.get("output").ok_or("missing -o <file.mtx>")?;
    write_matrix_market_file(&matrix, out).map_err(|e| e.to_string())?;
    println!("wrote {} ({} rows, {} non-zeros)", out, matrix.n_rows(), matrix.nnz());
    Ok(())
}

fn info(args: &Args) -> Result<(), String> {
    let path = args.require_positional(0, "matrix file")?;
    let m = read_matrix_market_file(path).map_err(|e| format!("{path}: {e}"))?;
    println!("file:        {path}");
    println!("dimensions:  {} x {}", m.n_rows(), m.n_cols());
    println!("non-zeros:   {}", m.nnz());
    println!(
        "shape:       {}",
        if m.is_lower_triangular() {
            "lower triangular"
        } else if m.is_upper_triangular() {
            "upper triangular"
        } else {
            "general"
        }
    );
    let lower = if m.is_lower_triangular() {
        m.clone()
    } else {
        m.lower_triangle().map_err(|e| e.to_string())?
    };
    if lower.has_nonzero_diagonal() {
        let dag = SolveDag::from_lower_triangular(&lower);
        let a = sptrsv_dag::analyze(&dag);
        println!("solve DAG:   {} edges, {} sources, {} sinks", a.n_edges, a.n_sources, a.n_sinks);
        println!(
            "wavefronts:  {} (average size {:.1}, max {})",
            a.n_wavefronts, a.avg_wavefront, a.max_wavefront
        );
        println!("degrees:     max in {} / max out {}", a.max_in_degree, a.max_out_degree);
        println!("ideal speed-up bound (critical path): {:.1}x", a.ideal_speedup());
        println!("solve flops: {}", lower.solve_flops());
    } else {
        println!("solve DAG:   n/a (zero diagonal entries)");
    }
    Ok(())
}

fn algos() -> Result<(), String> {
    println!("schedulers (use as --algo, parameters as name:key=value,key=value):\n");
    print!("{}", registry::help_text());
    Ok(())
}

/// Resolves an `--algo` value that may be `auto[:…][@model]`: runs the
/// tuner against the loaded operand and returns the concrete winning spec
/// (printing the greppable `auto picked:` line), or passes a non-auto
/// spec through untouched. Every spec-taking command funnels through
/// here, so `--algo auto` works uniformly on solve, plan, simulate and
/// serve-bench.
fn resolve_algo(args: &Args, algo: &str, lower: &CsrMatrix) -> Result<String, String> {
    if !sptrsv_tune::is_auto_spec(algo) {
        return Ok(algo.to_string());
    }
    let cores: Option<usize> = args
        .get("cores")
        .map(|v| v.parse().map_err(|e| format!("bad --cores: {e}")))
        .transpose()?;
    let resolved = sptrsv_tune::resolve_spec(lower, algo, cores).map_err(|e| e.to_string())?;
    if let Some(report) = &resolved.report {
        println!("verdict cache:     {}", report.cache.as_str());
        println!("tuning time:       {:.1} ms", report.tuning_seconds * 1e3);
    }
    println!("auto picked:       {}", resolved.spec);
    Ok(resolved.spec)
}

/// The effective core count of a command: the explicit `--cores` flag,
/// else the spec's `cores=` execution-policy key, else `default`.
fn effective_cores(args: &Args, algo: &str, default: usize) -> Result<usize, String> {
    if args.get("cores").is_some() {
        return args.get_parse("cores", default);
    }
    let spec: SchedulerSpec = algo.parse().map_err(|e: registry::RegistryError| e.to_string())?;
    let policy = registry::resolve_exec_policy(&spec).map_err(|e| e.to_string())?;
    Ok(policy.cores.unwrap_or(default))
}

/// The `--grant` flag, if given (a [`GrantPolicy`] spec value).
fn grant_flag(args: &Args) -> Result<Option<GrantPolicy>, String> {
    args.get("grant")
        .map(|text| text.parse().map_err(|e: registry::RegistryError| e.to_string()))
        .transpose()
}

/// The `--elastic` flag, if given (`on` or `off`).
fn elastic_flag(args: &Args) -> Result<Option<bool>, String> {
    on_off_flag(args, "elastic")
}

/// The `--shrink` flag, if given (`on` or `off`).
fn shrink_flag(args: &Args) -> Result<Option<bool>, String> {
    on_off_flag(args, "shrink")
}

/// The `--fastmath` flag, if given (`on` or `off`).
fn fastmath_flag(args: &Args) -> Result<Option<bool>, String> {
    on_off_flag(args, "fastmath")
}

/// A shared `on`/`off` boolean flag parser.
fn on_off_flag(args: &Args, name: &str) -> Result<Option<bool>, String> {
    match args.get(name) {
        None => Ok(None),
        Some("on") => Ok(Some(true)),
        Some("off") => Ok(Some(false)),
        Some(other) => Err(format!("bad value for --{name}: `{other}` (expected on or off)")),
    }
}

fn schedule(args: &Args) -> Result<(), String> {
    let path = args.require_positional(0, "matrix file")?;
    let algo = args.get("algo").unwrap_or("growlocal");
    let cores = effective_cores(args, algo, 8)?;
    let lower = load_lower(path)?;
    let dag = SolveDag::from_lower_triangular(&lower);
    let sched = registry::resolve(algo, &dag, cores).map_err(|e| e.to_string())?;
    let started = std::time::Instant::now();
    let s = sched.schedule(&dag, cores);
    let elapsed = started.elapsed();
    s.validate(&dag).map_err(|e| format!("scheduler bug: {e}"))?;
    let stats = s.stats(&dag);
    let wf = wavefronts(&dag);
    println!("algorithm:      {} (spec: {algo})", sched.name());
    println!("cores:          {cores}");
    println!("supersteps:     {} ({} barriers)", s.n_supersteps(), s.n_barriers());
    println!(
        "barrier reduction vs wavefronts: {:.2}x",
        wf.n_fronts() as f64 / s.n_supersteps() as f64
    );
    println!("work efficiency: {:.3}", stats.work_efficiency(cores));
    println!("avg imbalance:   {:.3}", stats.average_imbalance());
    println!("scheduling time: {:.2} ms", elapsed.as_secs_f64() * 1e3);
    if let Some(out) = args.get("output") {
        sptrsv_core::write_schedule_file(&s, out).map_err(|e| e.to_string())?;
        println!("schedule saved to {out}");
    }
    Ok(())
}

fn solve(args: &Args) -> Result<(), String> {
    let path = args.require_positional(0, "matrix file")?;
    let lower = load_lower(path)?;
    let algo = &resolve_algo(args, args.get("algo").unwrap_or("growlocal"), &lower)?;
    let cores = effective_cores(args, algo, 8)?;
    // Every flag takes a value (see `Args::parse`), so parse the booleans —
    // `--coarsen false` must not silently enable coarsening.
    let reorder = !args.get_parse("no-reorder", false)?;
    let coarsen = args.get_parse("coarsen", false)?;
    let repeat: usize = args.get_parse("repeat", 1)?;
    if repeat == 0 {
        return Err("--repeat needs at least one solve".into());
    }
    let pre_order = match args.get("pre-order") {
        None | Some("natural") => PreOrder::Natural,
        Some("rcm") => PreOrder::Rcm,
        Some("min-degree") => PreOrder::MinDegree,
        Some("nested-dissection") => PreOrder::NestedDissection,
        Some(other) => return Err(format!("unknown pre-order `{other}`")),
    };
    let mut builder = PlanBuilder::new(&lower)
        .orientation(Orientation::Lower)
        .scheduler(algo)
        .cores(cores)
        .pre_order(pre_order)
        .coarsen(coarsen)
        .reorder(reorder);
    if let Some(grant) = grant_flag(args)? {
        builder = builder.grant_policy(grant);
    }
    if let Some(elastic) = elastic_flag(args)? {
        builder = builder.elastic(elastic);
    }
    if let Some(shrink) = shrink_flag(args)? {
        builder = builder.shrink(shrink);
    }
    if let Some(fastmath) = fastmath_flag(args)? {
        builder = builder.fastmath(fastmath);
    }
    if let Some(dir) = args.get("plan-cache") {
        builder = builder.plan_cache(dir);
    }
    let plan = builder.build().map_err(|e| e.to_string())?;
    let b = vec![1.0; lower.n_rows()];
    let mut x = vec![0.0; lower.n_rows()];
    let mut workspace = plan.workspace();
    let started = std::time::Instant::now();
    plan.solve_into(&b, &mut x, &mut workspace);
    let first_elapsed = started.elapsed();
    let residual = relative_residual(&lower, &x, &b);
    println!("algorithm:         {algo}");
    println!("execution model:   {}", plan.exec_model());
    println!(
        "execution policy:  sync={} backoff={} grant={} elastic={} shrink={} fastmath={}",
        plan.exec_policy().sync,
        plan.exec_policy().backoff,
        plan.exec_policy().grant,
        if plan.exec_policy().elastic { "on" } else { "off" },
        if plan.exec_policy().shrink { "on" } else { "off" },
        if plan.exec_policy().fastmath { "on" } else { "off" }
    );
    if plan.cache_outcome() != CacheOutcome::Uncached {
        println!("plan cache:        {}", plan.cache_outcome());
    }
    let plan_cores = plan.compiled().n_cores();
    if plan_cores > 1 && plan.exec_model() != registry::ExecModel::Serial {
        // The parallel solve above already materialized the process
        // runtime, so reporting its capacity is free; serial plans never
        // touch it and should not spawn its workers just for this line.
        println!(
            "cores:             {plan_cores} (leased per solve from the {}-core process runtime)",
            sptrsv_exec::SolverRuntime::global().capacity()
        );
    } else {
        println!("cores:             {plan_cores}");
    }
    println!("supersteps:        {}", plan.schedule().n_supersteps());
    println!(
        "solve wall time:   {:.3} ms (first solve, runtime spin-up included)",
        first_elapsed.as_secs_f64() * 1e3
    );
    if repeat > 1 {
        // Steady state: the plan's worker pool is warm, buffers are
        // allocated — repeated solves must be bit-identical to the first.
        let reference = x.clone();
        let started = std::time::Instant::now();
        for round in 1..repeat {
            plan.solve_into(&b, &mut x, &mut workspace);
            if x != reference {
                return Err(format!("solve {round} of {repeat} diverged bitwise — nondeterminism"));
            }
        }
        let per_solve = started.elapsed().as_secs_f64() / (repeat - 1) as f64;
        println!(
            "steady-state:      {:.3} ms/solve over {} pooled solves (bit-identical)",
            per_solve * 1e3,
            repeat - 1
        );
    }
    println!("relative residual: {residual:.3e}");
    if residual > 1e-8 {
        return Err("residual too large — solve failed".into());
    }
    Ok(())
}

fn plan_cmd(args: &Args) -> Result<(), String> {
    let path = args.require_positional(0, "matrix file")?;
    let lower = load_lower(path)?;
    let algo = &resolve_algo(args, args.get("algo").unwrap_or("growlocal"), &lower)?;
    let cores = effective_cores(args, algo, 8)?;
    let reorder = !args.get_parse("no-reorder", false)?;
    let coarsen = args.get_parse("coarsen", false)?;
    let pre_order = match args.get("pre-order") {
        None | Some("natural") => PreOrder::Natural,
        Some("rcm") => PreOrder::Rcm,
        Some("min-degree") => PreOrder::MinDegree,
        Some("nested-dissection") => PreOrder::NestedDissection,
        Some(other) => return Err(format!("unknown pre-order `{other}`")),
    };
    let mut builder = PlanBuilder::new(&lower)
        .orientation(Orientation::Lower)
        .scheduler(algo)
        .cores(cores)
        .pre_order(pre_order)
        .coarsen(coarsen)
        .reorder(reorder);
    if let Some(dir) = args.get("plan-cache") {
        builder = builder.plan_cache(dir);
    }
    if let Some(load) = args.get("load") {
        builder = builder.load_plan(load);
    }
    let started = Instant::now();
    let plan = builder.build().map_err(|e| e.to_string())?;
    let built = started.elapsed();
    println!("algorithm:       {algo}");
    println!("execution model: {}", plan.exec_model());
    println!("cores:           {}", plan.compiled().n_cores());
    println!("supersteps:      {}", plan.schedule().n_supersteps());
    if let Some(fp) = plan.fingerprint() {
        println!("fingerprint:     {fp}");
    }
    println!("plan cache:      {}", plan.cache_outcome());
    println!("build time:      {:.3} ms", built.as_secs_f64() * 1e3);
    // One verifying solve: a plan that cannot solve is not worth saving,
    // and a loaded plan proves here that the revalidated schedule works.
    let b = vec![1.0; lower.n_rows()];
    let x = plan.solve(&b);
    let residual = relative_residual(&lower, &x, &b);
    println!("residual:        {residual:.3e} (one verifying solve)");
    if residual > 1e-8 {
        return Err("residual too large — refusing a plan that cannot solve".into());
    }
    if let Some(out) = args.get("save") {
        plan.save(out).map_err(|e| e.to_string())?;
        println!("plan saved to {out}");
    }
    Ok(())
}

fn simulate(args: &Args) -> Result<(), String> {
    let path = args.require_positional(0, "matrix file")?;
    let lower = load_lower(path)?;
    let algo = &resolve_algo(args, args.get("algo").unwrap_or("growlocal"), &lower)?;
    let cores = effective_cores(args, algo, 22)?;
    let profile = match args.get("machine").unwrap_or("intel") {
        "intel" => MachineProfile::intel_xeon_22(),
        "amd" => MachineProfile::amd_epyc_64(),
        "arm" => MachineProfile::kunpeng_920_48(),
        other => return Err(format!("unknown machine `{other}`")),
    };
    let dag = SolveDag::from_lower_triangular(&lower);
    let spec: SchedulerSpec = algo.parse().map_err(|e: registry::RegistryError| e.to_string())?;
    let model = registry::resolve_model(&spec).map_err(|e| e.to_string())?;
    let mut policy = registry::resolve_exec_policy(&spec).map_err(|e| e.to_string())?;
    if let Some(grant) = grant_flag(args)? {
        policy.grant = grant;
    }
    if let Some(elastic) = elastic_flag(args)? {
        policy.elastic = elastic;
    }
    if let Some(shrink) = shrink_flag(args)? {
        policy.shrink = shrink;
    }
    if let Some(fastmath) = fastmath_flag(args)? {
        policy.fastmath = fastmath;
    }
    let sched = registry::build(&spec, &dag, cores).map_err(|e| e.to_string())?;
    let s = sched.schedule(&dag, cores);
    let compiled = CompiledSchedule::from_schedule(&s);
    let serial = simulate_serial(&lower, &profile);
    let parallel = simulate_model(&lower, &compiled, model, None, &profile, policy);
    println!("machine:          {}", profile.name);
    println!("algorithm:        {} (spec: {algo})", sched.name());
    println!("execution model:  {model}");
    println!(
        "execution policy: sync={} backoff={} grant={} elastic={} shrink={} fastmath={}",
        policy.sync,
        policy.backoff,
        policy.grant,
        if policy.elastic { "on" } else { "off" },
        if policy.shrink { "on" } else { "off" },
        if policy.fastmath { "on" } else { "off" }
    );
    println!("serial cycles:    {:.3e}", serial.cycles);
    println!("parallel cycles:  {:.3e}", parallel.cycles);
    println!("modeled speed-up: {:.2}x", parallel.speedup_over(&serial));
    println!("sync share:       {:.1}%", 100.0 * parallel.sync_cycles / parallel.cycles);
    println!("cache misses:     {}", parallel.cache_misses);
    Ok(())
}

fn tune(args: &Args) -> Result<(), String> {
    let path = args.require_positional(0, "matrix file")?;
    let algo = args.get("algo").unwrap_or("auto");
    let lower = load_lower(path)?;
    let mut tuner = sptrsv_tune::Tuner::from_spec(&lower, algo)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("`sptrsv tune` needs an auto spec, got `{algo}`"))?;
    if let Some(cores) = positive_flag(args, "cores")? {
        tuner = tuner.cores(cores);
    }
    if let Some(budget) = positive_flag(args, "budget")? {
        tuner = tuner.max_candidates(budget);
    }
    if let Some(measure) = on_off_flag(args, "measure")? {
        tuner = tuner.measure(measure);
    }
    if let Some(dir) = args.get("cache") {
        tuner = tuner.cache_dir(dir);
    }
    let report = tuner.run().map_err(|e| e.to_string())?;
    print!("{}", sptrsv_tune::render_table(&report));
    println!("verdict cache: {}", report.cache.as_str());
    println!("tuning time:   {:.1} ms", report.tuning_seconds * 1e3);
    println!("auto picked: {}", report.winner);
    Ok(())
}

/// An optional positive-integer flag (serving knobs reject zero).
fn positive_flag(args: &Args, name: &str) -> Result<Option<usize>, String> {
    match args.get(name) {
        None => Ok(None),
        Some(v) => match v.parse::<usize>() {
            Ok(x) if x > 0 => Ok(Some(x)),
            _ => Err(format!("bad value for --{name}: `{v}` (expected a positive integer)")),
        },
    }
}

/// The `q`-th percentile (0.0 ..= 1.0) of an unsorted latency sample.
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn serve_bench(args: &Args) -> Result<(), String> {
    let path = args.require_positional(0, "matrix file")?;
    let lower = load_lower(path)?;
    let algo = &resolve_algo(args, args.get("algo").unwrap_or("growlocal"), &lower)?;
    let cores = effective_cores(args, algo, 8)?;
    let clients: usize = args.get_parse("clients", 4)?;
    let requests: usize = args.get_parse("requests", 32)?;
    if clients == 0 || requests == 0 {
        return Err("serve-bench needs at least one client and one request".into());
    }
    let depth = positive_flag(args, "depth")?;
    let admission = match args.get("admission") {
        None | Some("block") => Admission::Block,
        Some("shed") => Admission::Shed,
        Some(other) => {
            return Err(format!("bad value for --admission: `{other}` (expected block or shed)"))
        }
    };
    let mut builder =
        PlanBuilder::new(&lower).orientation(Orientation::Lower).scheduler(algo).cores(cores);
    if let Some(grant) = grant_flag(args)? {
        builder = builder.grant_policy(grant);
    }
    if let Some(elastic) = elastic_flag(args)? {
        builder = builder.elastic(elastic);
    }
    if let Some(shrink) = shrink_flag(args)? {
        builder = builder.shrink(shrink);
    }
    if let Some(fastmath) = fastmath_flag(args)? {
        builder = builder.fastmath(fastmath);
    }
    // The serving knobs are ordinary execution-policy keys: the typed
    // builder knobs below override the spec's batch= / batch_wait_us=,
    // and the ServeBuilder reads whichever won out of the plan's policy.
    if let Some(batch) = positive_flag(args, "batch")? {
        builder = builder.batch(batch);
    }
    if let Some(us) = args.get("batch-wait-us") {
        let us: u64 = us.parse().map_err(|_| {
            format!("bad value for --batch-wait-us: `{us}` (expected microseconds)")
        })?;
        builder = builder.batch_wait_us(us);
    }
    if let Some(dir) = args.get("plan-cache") {
        builder = builder.plan_cache(dir);
    }
    let plan = builder.build().map_err(|e| e.to_string())?;
    let fastmath = plan.exec_policy().fastmath;
    println!("algorithm:         {algo}");
    println!("execution model:   {}", plan.exec_model());
    if plan.cache_outcome() != CacheOutcome::Uncached {
        println!("plan cache:        {}", plan.cache_outcome());
    }
    let mut serve = ServeBuilder::new(plan).admission(admission);
    if let Some(depth) = depth {
        serve = serve.queue_depth(depth);
    }
    let server = serve.start();
    println!(
        "serving policy:    batch={} batch_wait={}us depth={} admission={}",
        server.max_batch(),
        server.batch_wait().as_micros(),
        server.queue_depth(),
        match admission {
            Admission::Block => "block",
            Admission::Shed => "shed",
        }
    );
    println!("load:              {clients} closed-loop clients x {requests} requests");
    let n = lower.n_rows();
    let started = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|client| {
                let (server, lower) = (&server, &lower);
                scope.spawn(move || -> Result<Vec<Duration>, String> {
                    let mut samples = Vec::with_capacity(requests);
                    let mut b: Vec<f64> =
                        (0..n).map(|i| ((i * 7 + client * 13) % 23) as f64 - 11.0).collect();
                    for round in 0..requests {
                        let rhs = b.clone();
                        // Bit-identity against a standalone solve holds on
                        // the exact path; fastmath keeps its documented
                        // 1e-12 agreement, checked through the residual.
                        let expected = (!fastmath).then(|| server.plan().solve(&rhs));
                        let mut pending = b;
                        let handle = loop {
                            match server.submit(pending) {
                                Ok(handle) => break handle,
                                Err(SubmitError::QueueFull { b }) => {
                                    // Shed admission: back off and retry.
                                    pending = b;
                                    std::thread::sleep(Duration::from_micros(50));
                                }
                                Err(e) => return Err(e.to_string()),
                            }
                        };
                        let response = handle.wait();
                        if let Some(expected) = expected {
                            if response.x != expected {
                                return Err(format!(
                                    "client {client} round {round}: fused solve diverged \
                                     bitwise from the standalone solve"
                                ));
                            }
                        }
                        let residual = relative_residual(lower, &response.x, &rhs);
                        if residual > 1e-8 {
                            return Err(format!(
                                "client {client} round {round}: residual {residual:.3e}"
                            ));
                        }
                        samples.push(response.timing.total);
                        // Recycle the solved buffer as the next right-hand
                        // side, perturbed so every request differs.
                        b = response.x;
                        for v in &mut b {
                            *v = (*v * 3.0 + round as f64).rem_euclid(23.0) - 11.0;
                        }
                    }
                    Ok(samples)
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("serve-bench clients never panic"))
            .collect::<Result<Vec<_>, String>>()
            .map(|per_client| per_client.into_iter().flatten().collect())
    })?;
    let wall = started.elapsed();
    let stats = server.shutdown();
    latencies.sort_unstable();
    let widths: Vec<String> = stats
        .widths
        .iter()
        .enumerate()
        .filter(|&(_, &count)| count > 0)
        .map(|(width, count)| format!("{width}x{count}"))
        .collect();
    println!("completed:         {} requests in {} batches", stats.completed, stats.batches);
    println!(
        "mean batch width:  {:.2} (batches by width: {})",
        stats.mean_width(),
        widths.join(" ")
    );
    println!("shed:              {}", stats.shed);
    println!(
        "latency:           p50 {:.3} ms / p99 {:.3} ms (request submit -> result)",
        percentile(&latencies, 0.50).as_secs_f64() * 1e3,
        percentile(&latencies, 0.99).as_secs_f64() * 1e3
    );
    println!(
        "goodput:           {:.0} solves/s over {:.3} s wall",
        stats.completed as f64 / wall.as_secs_f64(),
        wall.as_secs_f64()
    );
    if stats.completed != clients * requests {
        return Err(format!(
            "served {} of {} requests — the queue leaked work",
            stats.completed,
            clients * requests
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_rejects_unknown_commands() {
        assert!(dispatch(&["frobnicate".to_string()]).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn end_to_end_generate_info_schedule_solve() {
        let dir = std::env::temp_dir().join("sptrsv-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("g.mtx");
        let sched_file = dir.join("g.sched");
        let sv = |items: &[&str]| -> Vec<String> { items.iter().map(|s| s.to_string()).collect() };
        dispatch(&sv(&[
            "generate",
            "grid2d",
            "--width",
            "12",
            "--height",
            "12",
            "-o",
            mtx.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&sv(&["info", mtx.to_str().unwrap()])).unwrap();
        dispatch(&sv(&["algos"])).unwrap();
        dispatch(&sv(&[
            "schedule",
            mtx.to_str().unwrap(),
            "--cores",
            "4",
            "--algo",
            "growlocal:alpha=8",
            "-o",
            sched_file.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(sched_file.exists());
        // The saved schedule must load back and cover the matrix.
        let s = sptrsv_core::read_schedule_file(&sched_file).unwrap();
        assert_eq!(s.n_vertices(), 144);
        dispatch(&sv(&["solve", mtx.to_str().unwrap(), "--cores", "2"])).unwrap();
        dispatch(&sv(&[
            "solve",
            mtx.to_str().unwrap(),
            "--cores",
            "2",
            "--algo",
            "funnel-gl:cap=auto",
            "--pre-order",
            "rcm",
        ]))
        .unwrap();
        dispatch(&sv(&[
            "simulate",
            mtx.to_str().unwrap(),
            "--machine",
            "arm",
            "--algo",
            "hdagg:balance=1.3",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_execution_model_is_spec_addressable_through_the_cli() {
        let dir = std::env::temp_dir().join("sptrsv-cli-exec-models");
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("m.mtx");
        let sv = |items: &[&str]| -> Vec<String> { items.iter().map(|s| s.to_string()).collect() };
        dispatch(&sv(&[
            "generate",
            "grid2d",
            "--width",
            "10",
            "--height",
            "10",
            "-o",
            mtx.to_str().unwrap(),
        ]))
        .unwrap();
        for info in registry::list() {
            for &model in info.exec_models {
                let spec = format!("{}@{model}", info.name);
                dispatch(&sv(&["solve", mtx.to_str().unwrap(), "--cores", "2", "--algo", &spec]))
                    .unwrap_or_else(|e| panic!("solve --algo {spec}: {e}"));
                dispatch(&sv(&[
                    "simulate",
                    mtx.to_str().unwrap(),
                    "--cores",
                    "4",
                    "--algo",
                    &spec,
                ]))
                .unwrap_or_else(|e| panic!("simulate --algo {spec}: {e}"));
            }
        }
        // Scoped keys flow through unchanged.
        dispatch(&sv(&[
            "solve",
            mtx.to_str().unwrap(),
            "--cores",
            "2",
            "--algo",
            "funnel-gl:gl.alpha=8,cap=auto@async",
        ]))
        .unwrap();
        // Execution-policy keys are spec-addressable on any scheduler…
        for spec in ["growlocal:sync=full@async", "spmp:backoff=yield@async"] {
            dispatch(&sv(&["solve", mtx.to_str().unwrap(), "--cores", "2", "--algo", spec]))
                .unwrap_or_else(|e| panic!("solve --algo {spec}: {e}"));
            dispatch(&sv(&["simulate", mtx.to_str().unwrap(), "--cores", "4", "--algo", spec]))
                .unwrap_or_else(|e| panic!("simulate --algo {spec}: {e}"));
        }
        // Grant/elastic/shrink policy: spec keys and the flag overrides.
        for spec in [
            "growlocal:grant=fair@barrier",
            "growlocal:grant=cap=2,elastic=on@barrier",
            "growlocal:grant=fair,elastic=on,shrink=on@barrier",
        ] {
            dispatch(&sv(&["solve", mtx.to_str().unwrap(), "--cores", "2", "--algo", spec]))
                .unwrap_or_else(|e| panic!("solve --algo {spec}: {e}"));
        }
        dispatch(&sv(&[
            "solve",
            mtx.to_str().unwrap(),
            "--cores",
            "2",
            "--grant",
            "fair",
            "--elastic",
            "on",
            "--shrink",
            "on",
        ]))
        .unwrap();
        dispatch(&sv(&[
            "simulate",
            mtx.to_str().unwrap(),
            "--cores",
            "4",
            "--algo",
            "growlocal:grant=fair",
            "--elastic",
            "on",
            "--shrink",
            "on",
        ]))
        .unwrap();
        assert!(dispatch(&sv(&["solve", mtx.to_str().unwrap(), "--grant", "everything"])).is_err());
        assert!(dispatch(&sv(&["solve", mtx.to_str().unwrap(), "--elastic", "yes"])).is_err());
        assert!(dispatch(&sv(&["solve", mtx.to_str().unwrap(), "--shrink", "maybe"])).is_err());
        // Fastmath: spec key and flag forms on every execution model, and
        // bad values rejected (flag and spec key alike).
        for spec in ["growlocal:fastmath=on@barrier", "growlocal:fastmath=on@serial"] {
            dispatch(&sv(&["solve", mtx.to_str().unwrap(), "--cores", "2", "--algo", spec]))
                .unwrap_or_else(|e| panic!("solve --algo {spec}: {e}"));
        }
        dispatch(&sv(&[
            "solve",
            mtx.to_str().unwrap(),
            "--cores",
            "2",
            "--algo",
            "spmp@async",
            "--fastmath",
            "on",
        ]))
        .unwrap();
        dispatch(&sv(&["simulate", mtx.to_str().unwrap(), "--cores", "4", "--fastmath", "on"]))
            .unwrap();
        assert!(dispatch(&sv(&["solve", mtx.to_str().unwrap(), "--fastmath", "fast"])).is_err());
        assert!(dispatch(&sv(&["solve", mtx.to_str().unwrap(), "--algo", "growlocal:fastmath=1"]))
            .is_err());
        // …and repeated pooled solves are bit-stable.
        dispatch(&sv(&[
            "solve",
            mtx.to_str().unwrap(),
            "--cores",
            "3",
            "--algo",
            "spmp@async",
            "--repeat",
            "20",
        ]))
        .unwrap();
        assert!(dispatch(&sv(&["solve", mtx.to_str().unwrap(), "--repeat", "0"])).is_err());
        assert!(dispatch(&sv(&["solve", mtx.to_str().unwrap(), "--algo", "spmp:backoff=fast"]))
            .is_err());
        // Unknown models and scopes are rejected with registry errors.
        assert!(
            dispatch(&sv(&["solve", mtx.to_str().unwrap(), "--algo", "growlocal@warp"])).is_err()
        );
        assert!(dispatch(&sv(&["solve", mtx.to_str().unwrap(), "--algo", "growlocal:gl.alpha=8"]))
            .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_bench_is_spec_and_flag_addressable() {
        let dir = std::env::temp_dir().join("sptrsv-cli-serve-bench");
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("m.mtx");
        let mtx = mtx.to_str().unwrap();
        let sv = |items: &[&str]| -> Vec<String> { items.iter().map(|s| s.to_string()).collect() };
        dispatch(&sv(&["generate", "grid2d", "--width", "10", "--height", "10", "-o", mtx]))
            .unwrap();
        // Spec-key form: batch= / batch_wait_us= ride the --algo spec.
        dispatch(&sv(&[
            "serve-bench",
            mtx,
            "--cores",
            "2",
            "--algo",
            "growlocal:batch=4,batch_wait_us=200",
            "--clients",
            "3",
            "--requests",
            "5",
        ]))
        .unwrap();
        // Flag form, shed admission, a tiny queue and zero linger.
        dispatch(&sv(&[
            "serve-bench",
            mtx,
            "--cores",
            "2",
            "--batch",
            "4",
            "--batch-wait-us",
            "0",
            "--clients",
            "2",
            "--requests",
            "4",
            "--depth",
            "4",
            "--admission",
            "shed",
        ]))
        .unwrap();
        // Serving composes with the rest of the policy surface.
        dispatch(&sv(&[
            "serve-bench",
            mtx,
            "--cores",
            "2",
            "--algo",
            "spmp:grant=fair@async",
            "--clients",
            "2",
            "--requests",
            "3",
            "--fastmath",
            "on",
        ]))
        .unwrap();
        // Bad values bounce with errors, not panics.
        for bad in [
            ["--batch", "0"],
            ["--batch", "many"],
            ["--batch-wait-us", "soon"],
            ["--admission", "maybe"],
            ["--depth", "0"],
            ["--clients", "0"],
            ["--requests", "0"],
            ["--algo", "growlocal:batch=0"],
        ] {
            assert!(
                dispatch(&sv(&["serve-bench", mtx, bad[0], bad[1]])).is_err(),
                "{} {} should be rejected",
                bad[0],
                bad[1]
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plan_cache_and_save_load_flow_through_the_cli() {
        let dir = std::env::temp_dir().join("sptrsv-cli-plan-cache");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("m.mtx");
        let mtx = mtx.to_str().unwrap();
        let cache = dir.join("cache");
        let cache = cache.to_str().unwrap();
        let plan_file = dir.join("m.plan");
        let plan_file = plan_file.to_str().unwrap();
        let sv = |items: &[&str]| -> Vec<String> { items.iter().map(|s| s.to_string()).collect() };
        dispatch(&sv(&["generate", "grid2d", "--width", "12", "--height", "12", "-o", mtx]))
            .unwrap();
        // First cached solve populates the directory, second loads from it.
        dispatch(&sv(&["solve", mtx, "--cores", "2", "--plan-cache", cache])).unwrap();
        assert_eq!(
            std::fs::read_dir(cache).unwrap().count(),
            1,
            "one plan file under the cache directory"
        );
        dispatch(&sv(&["solve", mtx, "--cores", "2", "--plan-cache", cache])).unwrap();
        // The spec-key spelling reaches the same machinery.
        let spec = format!("growlocal:plan_cache={cache}");
        dispatch(&sv(&["solve", mtx, "--cores", "2", "--algo", &spec])).unwrap();
        // plan --save writes an explicit file; --load builds from it, and
        // serve-bench warms from the populated cache directory.
        dispatch(&sv(&["plan", mtx, "--cores", "2", "--save", plan_file])).unwrap();
        assert!(std::path::Path::new(plan_file).exists());
        dispatch(&sv(&["plan", mtx, "--cores", "2", "--load", plan_file])).unwrap();
        dispatch(&sv(&[
            "serve-bench",
            mtx,
            "--cores",
            "2",
            "--plan-cache",
            cache,
            "--clients",
            "2",
            "--requests",
            "3",
        ]))
        .unwrap();
        // Mismatched build flags change the fingerprint: loading the saved
        // plan under different settings errors instead of mis-solving.
        assert!(dispatch(&sv(&["plan", mtx, "--cores", "3", "--load", plan_file])).is_err());
        assert!(dispatch(&sv(&[
            "plan",
            mtx,
            "--cores",
            "2",
            "--coarsen",
            "true",
            "--load",
            plan_file
        ]))
        .is_err());
        // A blank spec value is a registry error, not a silent no-op.
        assert!(dispatch(&sv(&["solve", mtx, "--algo", "growlocal:plan_cache="])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tune_and_auto_specs_flow_through_the_cli() {
        let dir = std::env::temp_dir().join("sptrsv-cli-tune");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("m.mtx");
        let mtx = mtx.to_str().unwrap();
        let cache = dir.join("verdicts");
        let cache = cache.to_str().unwrap();
        let sv = |items: &[&str]| -> Vec<String> { items.iter().map(|s| s.to_string()).collect() };
        dispatch(&sv(&["generate", "grid2d", "--width", "12", "--height", "12", "-o", mtx]))
            .unwrap();
        // The standalone tuner: default spec, flag form, spec-key form.
        dispatch(&sv(&["tune", mtx, "--cores", "2"])).unwrap();
        dispatch(&sv(&["tune", mtx, "--cores", "2", "--budget", "4", "--measure", "on"])).unwrap();
        dispatch(&sv(&["tune", mtx, "--algo", "auto:budget=4,cores=2@barrier"])).unwrap();
        // The verdict cache: first run stores, second hits.
        dispatch(&sv(&["tune", mtx, "--cores", "2", "--cache", cache])).unwrap();
        assert_eq!(std::fs::read_dir(cache).unwrap().count(), 1, "one verdict file");
        dispatch(&sv(&["tune", mtx, "--cores", "2", "--cache", cache])).unwrap();
        // auto as an --algo value on every spec-taking command.
        dispatch(&sv(&["solve", mtx, "--cores", "2", "--algo", "auto"])).unwrap();
        dispatch(&sv(&["simulate", mtx, "--cores", "4", "--algo", "auto"])).unwrap();
        dispatch(&sv(&["plan", mtx, "--cores", "2", "--algo", "auto:budget=5"])).unwrap();
        dispatch(&sv(&[
            "serve-bench",
            mtx,
            "--cores",
            "2",
            "--algo",
            "auto",
            "--clients",
            "2",
            "--requests",
            "3",
        ]))
        .unwrap();
        // A non-auto spec on tune and a bad scope key are errors.
        assert!(dispatch(&sv(&["tune", mtx, "--algo", "growlocal"])).is_err());
        assert!(dispatch(&sv(&["tune", mtx, "--algo", "auto:warp=9"])).is_err());
        assert!(dispatch(&sv(&["solve", mtx, "--algo", "auto:budget=0"])).is_err());
        // A corrupt verdict file is an error, never a silent wrong pick.
        let verdict = std::fs::read_dir(cache).unwrap().next().unwrap().unwrap().path();
        std::fs::write(&verdict, "sptrsv-verdict v1\ngarbage\n").unwrap();
        assert!(dispatch(&sv(&["tune", mtx, "--cores", "2", "--cache", cache])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_registered_scheduler_resolves_through_the_cli_path() {
        // The CLI derives its scheduler set from the registry; this pins the
        // absence of a second hardcoded list (the seed's `scheduler_by_name`
        // and its duplicated `bench` enumeration could silently drift).
        let dag = SolveDag::from_edges(3, &[(0, 1)], vec![1; 3]);
        for info in registry::list() {
            assert!(registry::resolve(info.name, &dag, 2).is_ok(), "{} missing", info.name);
            for example in info.examples {
                assert!(registry::resolve(example, &dag, 2).is_ok(), "{example} broken");
            }
        }
        assert!(registry::resolve("nope", &dag, 2).is_err());
    }
}
