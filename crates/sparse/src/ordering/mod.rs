//! Fill-reducing and locality orderings.
//!
//! Offline stand-ins for the pre-processing used by the paper's modified data
//! sets (see DESIGN.md, substitution 2):
//!
//! * [`rcm`] — reverse Cuthill–McKee bandwidth reduction,
//! * [`min_degree`] — greedy minimum-degree elimination ordering (the role
//!   of AMD in the iChol data set, §6.2.3),
//! * [`nested_dissection`] — recursive BFS-separator dissection (the role of
//!   `METIS_NodeND` in the METIS data set, §6.2.2).
//!
//! All orderings operate on the symmetrized sparsity pattern and return a
//! [`Permutation`](crate::Permutation) in the workspace's `old_of_new`
//! convention, ready for [`CsrMatrix::symmetric_permute`](crate::CsrMatrix::symmetric_permute).

pub mod min_degree;
pub mod nested_dissection;
pub mod rcm;

pub use min_degree::min_degree_ordering;
pub use nested_dissection::nested_dissection_ordering;
pub use rcm::rcm_ordering;

use crate::csr::CsrMatrix;

/// Symmetrized adjacency structure (CSR-of-graph) without self-loops.
///
/// `neighbors(v)` = `adjncy[xadj[v]..xadj[v+1]]`, sorted and deduplicated.
#[derive(Debug, Clone)]
pub struct AdjacencyGraph {
    xadj: Vec<usize>,
    adjncy: Vec<usize>,
}

impl AdjacencyGraph {
    /// Builds the symmetrized pattern graph of a square matrix.
    pub fn from_matrix(m: &CsrMatrix) -> Self {
        assert_eq!(m.n_rows(), m.n_cols(), "adjacency graph needs a square matrix");
        let n = m.n_rows();
        let mut degree = vec![0usize; n];
        for (r, c, _) in m.iter() {
            if r != c {
                degree[r] += 1;
                degree[c] += 1;
            }
        }
        let mut xadj = vec![0usize; n + 1];
        for v in 0..n {
            xadj[v + 1] = xadj[v] + degree[v];
        }
        let mut adjncy = vec![0usize; xadj[n]];
        let mut cursor = xadj.clone();
        for (r, c, _) in m.iter() {
            if r != c {
                adjncy[cursor[r]] = c;
                cursor[r] += 1;
                adjncy[cursor[c]] = r;
                cursor[c] += 1;
            }
        }
        // Sort + dedup each neighbourhood in place, then recompact.
        let mut new_xadj = Vec::with_capacity(n + 1);
        let mut new_adjncy = Vec::with_capacity(adjncy.len());
        new_xadj.push(0);
        for v in 0..n {
            let seg = &mut adjncy[xadj[v]..xadj[v + 1]];
            seg.sort_unstable();
            let mut last = usize::MAX;
            for &u in seg.iter() {
                if u != last {
                    new_adjncy.push(u);
                    last = u;
                }
            }
            new_xadj.push(new_adjncy.len());
        }
        AdjacencyGraph { xadj: new_xadj, adjncy: new_adjncy }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Sorted, deduplicated neighbours of `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjncy[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Degree of `v` (self-loops excluded).
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn adjacency_symmetrizes_and_dedups() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0).unwrap(); // self-loop dropped
        coo.push(1, 0, 1.0).unwrap(); // only lower stored
        coo.push(2, 1, 1.0).unwrap();
        coo.push(1, 2, 1.0).unwrap(); // duplicate edge after symmetrizing
        let g = AdjacencyGraph::from_matrix(&coo.to_csr());
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
        assert_eq!(g.degree(1), 2);
    }
}
