//! Greedy minimum-degree elimination ordering.
//!
//! Stand-in for AMD in the iChol data set (§6.2.3): repeatedly eliminate a
//! vertex of minimum degree in the elimination graph, connecting its
//! remaining neighbours into a clique. We use a lazy binary heap for the
//! degree priority and hash-set neighbourhoods; this is the textbook
//! algorithm rather than the quotient-graph AMD, which is sufficient for the
//! role the ordering plays here (perturbing the DAG the way a fill-reducing
//! ordering does).

use super::AdjacencyGraph;
use crate::csr::CsrMatrix;
use crate::perm::Permutation;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Computes a minimum-degree elimination permutation of a square matrix.
///
/// Worst-case cost is dominated by clique formation (`O(Σ fill)`); for the
/// banded application matrices used in this workspace that is near-linear.
pub fn min_degree_ordering(m: &CsrMatrix) -> Permutation {
    let g = AdjacencyGraph::from_matrix(m);
    let n = g.n();
    let mut adj: Vec<HashSet<usize>> =
        (0..n).map(|v| g.neighbors(v).iter().copied().collect()).collect();
    let mut eliminated = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> =
        adj.iter().enumerate().map(|(v, nbrs)| Reverse((nbrs.len(), v))).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse((deg, v))) = heap.pop() {
        if eliminated[v] || adj[v].len() != deg {
            continue; // stale heap entry
        }
        eliminated[v] = true;
        order.push(v);
        // Form the clique among v's surviving neighbours.
        let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
        for &u in &nbrs {
            adj[u].remove(&v);
        }
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                let (a, b) = (nbrs[i], nbrs[j]);
                if adj[a].insert(b) {
                    adj[b].insert(a);
                }
            }
        }
        for &u in &nbrs {
            heap.push(Reverse((adj[u].len(), u)));
        }
        adj[v].clear();
        adj[v].shrink_to_fit();
    }
    Permutation::from_old_of_new(order).expect("every vertex eliminated exactly once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid::{grid2d_laplacian, Stencil2D};
    use crate::CooMatrix;

    #[test]
    fn orders_every_vertex_once() {
        let a = grid2d_laplacian(8, 8, Stencil2D::FivePoint, 0.5);
        let p = min_degree_ordering(&a);
        assert_eq!(p.len(), 64);
    }

    #[test]
    fn star_graph_eliminates_leaves_first() {
        // Star: centre 0 connected to 1..=4. Leaves have degree 1 and must all
        // be eliminated before the centre.
        let mut coo = CooMatrix::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 2.0).unwrap();
        }
        for leaf in 1..5 {
            coo.push(leaf, 0, -1.0).unwrap();
        }
        let p = min_degree_ordering(&coo.to_csr());
        // Eliminating any leaf keeps the centre at degree >= 1 while leaves
        // stay at degree <= 1, so the centre cannot be eliminated while two or
        // more leaves remain (ties at degree 1 may let it precede the final
        // leaf). It must therefore appear in one of the last two positions.
        let centre_pos = p.old_of_new().iter().position(|&v| v == 0).unwrap();
        assert!(centre_pos >= 3, "centre eliminated too early (position {centre_pos})");
    }

    #[test]
    fn path_graph_orders_endpoints_early() {
        // Path 0-1-2-3-4: a min-degree elimination starts at an endpoint.
        let mut coo = CooMatrix::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 2.0).unwrap();
        }
        for i in 1..5 {
            coo.push(i, i - 1, -1.0).unwrap();
        }
        let p = min_degree_ordering(&coo.to_csr());
        let first = p.old_of_new()[0];
        assert!(first == 0 || first == 4, "first eliminated was {first}");
    }
}
