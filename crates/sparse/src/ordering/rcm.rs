//! Reverse Cuthill–McKee ordering.
//!
//! Classic bandwidth-reducing ordering: breadth-first search from a
//! pseudo-peripheral vertex, visiting neighbours in order of increasing
//! degree, then reversing the visit order. Used both as a locality baseline
//! and as the fallback ordering for very large matrices where minimum degree
//! would be too expensive.

use super::AdjacencyGraph;
use crate::csr::CsrMatrix;
use crate::perm::Permutation;
use std::collections::VecDeque;

/// BFS from `start` over unvisited vertices; returns the visit order and the
/// last level (used for pseudo-peripheral search). `visited` is updated.
fn bfs_component(
    g: &AdjacencyGraph,
    start: usize,
    visited: &mut [bool],
    by_degree: bool,
) -> (Vec<usize>, Vec<usize>, usize) {
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    let mut depth_of = std::collections::HashMap::new();
    visited[start] = true;
    queue.push_back(start);
    depth_of.insert(start, 0usize);
    let mut max_depth = 0usize;
    while let Some(v) = queue.pop_front() {
        order.push(v);
        let d = depth_of[&v];
        max_depth = max_depth.max(d);
        let mut nbrs: Vec<usize> =
            g.neighbors(v).iter().copied().filter(|&u| !visited[u]).collect();
        if by_degree {
            nbrs.sort_unstable_by_key(|&u| g.degree(u));
        }
        for u in nbrs {
            if !visited[u] {
                visited[u] = true;
                depth_of.insert(u, d + 1);
                queue.push_back(u);
            }
        }
    }
    let last_level = order.iter().filter(|v| depth_of[v] == max_depth).copied().collect();
    (order, last_level, max_depth)
}

/// Finds a pseudo-peripheral vertex of the component containing `start` by
/// iterating "BFS to the farthest level, restart from its min-degree vertex".
fn pseudo_peripheral(g: &AdjacencyGraph, start: usize) -> usize {
    let mut current = start;
    let mut best_depth = 0usize;
    for _ in 0..4 {
        let mut visited = vec![false; g.n()];
        let (_order, last_level, depth) = bfs_component(g, current, &mut visited, false);
        let candidate = last_level.iter().copied().min_by_key(|&v| g.degree(v));
        match candidate {
            Some(c) if c != current => {
                if depth <= best_depth {
                    break;
                }
                best_depth = depth;
                current = c;
            }
            _ => break,
        }
    }
    current
}

/// Computes the reverse Cuthill–McKee permutation of a square matrix.
///
/// Disconnected components are ordered one after another, each from its own
/// pseudo-peripheral start.
pub fn rcm_ordering(m: &CsrMatrix) -> Permutation {
    let g = AdjacencyGraph::from_matrix(m);
    let n = g.n();
    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for v in 0..n {
        if visited[v] {
            continue;
        }
        let start = pseudo_peripheral(&g, v);
        let (component, _, _) = bfs_component(&g, start, &mut visited, true);
        order.extend(component);
    }
    order.reverse();
    Permutation::from_old_of_new(order).expect("BFS visits every vertex exactly once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid::{grid2d_laplacian, Stencil2D};
    use crate::CooMatrix;

    fn bandwidth(m: &CsrMatrix) -> usize {
        m.iter().map(|(r, c, _)| r.abs_diff(c)).max().unwrap_or(0)
    }

    #[test]
    fn rcm_is_a_permutation_and_reduces_bandwidth() {
        // A grid ordered badly: permute a grid randomly, then check RCM
        // restores a small bandwidth.
        let a = grid2d_laplacian(20, 20, Stencil2D::FivePoint, 0.5);
        let scramble =
            Permutation::from_old_of_new((0..400).map(|i| (i * 173) % 400).collect()).unwrap();
        let scrambled = a.symmetric_permute(&scramble).unwrap();
        assert!(bandwidth(&scrambled) > 100);
        let p = rcm_ordering(&scrambled);
        let restored = scrambled.symmetric_permute(&p).unwrap();
        assert!(
            bandwidth(&restored) < bandwidth(&scrambled) / 2,
            "bandwidth {} not reduced from {}",
            bandwidth(&restored),
            bandwidth(&scrambled)
        );
    }

    #[test]
    fn handles_disconnected_graphs() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        coo.push(2, 2, 1.0).unwrap();
        coo.push(3, 3, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        let p = rcm_ordering(&coo.to_csr());
        assert_eq!(p.len(), 4);
    }
}
