//! Recursive nested dissection via BFS level-set separators.
//!
//! Stand-in for `METIS_NodeND` in the METIS data set (§6.2.2). The classical
//! nested-dissection recursion orders the two halves first and the separator
//! last; the fill-reducing effect on the solve DAG (shallower, bushier
//! elimination structure with many small wavefronts near the root) is the
//! property the paper's experiment depends on, and this construction
//! reproduces it.

use super::AdjacencyGraph;
use crate::csr::CsrMatrix;
use crate::perm::Permutation;
use std::collections::VecDeque;

/// Below this subgraph size the recursion stops and vertices are emitted in
/// their natural order.
const LEAF_SIZE: usize = 32;

/// Computes a nested-dissection permutation of a square matrix.
pub fn nested_dissection_ordering(m: &CsrMatrix) -> Permutation {
    let g = AdjacencyGraph::from_matrix(m);
    let n = g.n();
    let mut order = Vec::with_capacity(n);
    // `membership[v]` tags the active subproblem of v; recursion re-tags.
    let vertices: Vec<usize> = (0..n).collect();
    let mut in_subset = vec![false; n];
    dissect(&g, &vertices, &mut in_subset, &mut order);
    debug_assert_eq!(order.len(), n);
    Permutation::from_old_of_new(order).expect("dissection emits every vertex exactly once")
}

/// Recursively orders `vertices` (a vertex-induced subgraph of `g`) into
/// `order`. `in_subset` is a reusable scratch marker, false on entry and exit.
fn dissect(g: &AdjacencyGraph, vertices: &[usize], in_subset: &mut [bool], order: &mut Vec<usize>) {
    if vertices.len() <= LEAF_SIZE {
        order.extend_from_slice(vertices);
        return;
    }
    for &v in vertices {
        in_subset[v] = true;
    }
    // BFS level structure of the (first component of the) subgraph.
    let mut level_of: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut queue = VecDeque::new();
    let start = vertices[0];
    level_of.insert(start, 0);
    queue.push_back(start);
    let mut max_level = 0usize;
    let mut reached = 1usize;
    while let Some(v) = queue.pop_front() {
        let d = level_of[&v];
        max_level = max_level.max(d);
        for &u in g.neighbors(v) {
            if in_subset[u] && !level_of.contains_key(&u) {
                level_of.insert(u, d + 1);
                queue.push_back(u);
                reached += 1;
            }
        }
    }

    // Disconnected subgraph or too shallow to split: emit remaining parts.
    if reached < vertices.len() {
        // Split into the reached component and the rest, recurse on both.
        let (comp, rest): (Vec<usize>, Vec<usize>) =
            vertices.iter().partition(|v| level_of.contains_key(v));
        for &v in vertices {
            in_subset[v] = false;
        }
        dissect(g, &comp, in_subset, order);
        dissect(g, &rest, in_subset, order);
        return;
    }
    if max_level < 2 {
        // Diameter too small for a level separator; natural order.
        for &v in vertices {
            in_subset[v] = false;
        }
        order.extend_from_slice(vertices);
        return;
    }

    // Choose the level whose removal best balances the halves.
    let mut level_counts = vec![0usize; max_level + 1];
    for &d in level_of.values() {
        level_counts[d] += 1;
    }
    let total = vertices.len();
    let mut below = 0usize;
    let mut best_level = 1usize;
    let mut best_score = usize::MAX;
    for d in 1..max_level {
        below += level_counts[d - 1];
        let above = total - below - level_counts[d];
        let score = below.abs_diff(above) + level_counts[d];
        if score < best_score {
            best_score = score;
            best_level = d;
        }
    }

    let mut part_a = Vec::new();
    let mut part_b = Vec::new();
    let mut separator = Vec::new();
    for &v in vertices {
        let d = level_of[&v];
        if d < best_level {
            part_a.push(v);
        } else if d == best_level {
            separator.push(v);
        } else {
            part_b.push(v);
        }
    }
    for &v in vertices {
        in_subset[v] = false;
    }
    dissect(g, &part_a, in_subset, order);
    dissect(g, &part_b, in_subset, order);
    order.extend_from_slice(&separator);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid::{grid2d_laplacian, Stencil2D};

    #[test]
    fn produces_complete_permutation() {
        let a = grid2d_laplacian(16, 16, Stencil2D::FivePoint, 0.5);
        let p = nested_dissection_ordering(&a);
        assert_eq!(p.len(), 256);
    }

    #[test]
    fn separator_ordered_last() {
        // In a path graph 0..n, nested dissection puts a middle vertex last.
        let mut coo = crate::CooMatrix::new(100, 100);
        for i in 0..100 {
            coo.push(i, i, 2.0).unwrap();
        }
        for i in 1..100 {
            coo.push(i, i - 1, -1.0).unwrap();
        }
        let p = nested_dissection_ordering(&coo.to_csr());
        let last = *p.old_of_new().last().unwrap();
        assert!(
            (25..75).contains(&last),
            "last-ordered vertex {last} is not near the middle of the path"
        );
    }

    #[test]
    fn small_matrices_pass_through() {
        let a = grid2d_laplacian(4, 4, Stencil2D::FivePoint, 0.5);
        let p = nested_dissection_ordering(&a);
        assert_eq!(p.len(), 16);
    }
}
