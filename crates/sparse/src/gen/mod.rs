//! Synthetic sparse-matrix generators.
//!
//! Three families, mirroring §6.2 of the paper:
//!
//! * [`grid`] — 2D/3D finite-difference stencil Laplacians. These are the
//!   offline stand-in for the SuiteSparse SPD matrices (see DESIGN.md,
//!   substitution 1): application matrices in the collection are dominated by
//!   mesh discretizations with exactly this banded, locally-ordered structure.
//! * [`erdos_renyi`] — uniformly random lower-triangular matrices (§6.2.4),
//!   generated with geometric skip-sampling so the cost is `O(nnz)` rather
//!   than `O(n²)`.
//! * [`narrow_band`] — random matrices whose entry probability decays as
//!   `p·exp((1+j−i)/B)` away from the diagonal (§6.2.5): hard to parallelize
//!   by design, but with good locality.

pub mod erdos_renyi;
pub mod grid;
pub mod narrow_band;
pub mod shuffle;
pub mod values;

pub use erdos_renyi::erdos_renyi_lower;
pub use grid::{
    block_diagonal_spd, grid2d_laplacian, grid3d_laplacian, supernodal_spd, Stencil2D, Stencil3D,
};
pub use narrow_band::narrow_band_lower;
pub use shuffle::block_shuffle_permutation;
