//! Value distributions used by the random generators.
//!
//! §6.2.4 of the paper: off-diagonal non-zeros are uniform in `[-2, 2]`;
//! diagonal entries have absolute value log-uniform in `[2⁻¹, 2]` with an
//! independently uniform sign (the diagonal distribution avoids numerical
//! instability, in particular divisions by values close to zero).

use rand::Rng;

/// Draws an off-diagonal value: uniform in `[-2, 2]`.
#[inline]
pub fn offdiag_value<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.gen_range(-2.0..2.0)
}

/// Draws a diagonal value: `±exp(U(ln ½, ln 2))` with a random sign.
#[inline]
pub fn diag_value<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let log_mag = rng.gen_range((0.5f64).ln()..(2.0f64).ln());
    let mag = log_mag.exp();
    if rng.gen_bool(0.5) {
        mag
    } else {
        -mag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn diag_values_in_band() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let d = diag_value(&mut rng);
            let m = d.abs();
            assert!((0.5..=2.0).contains(&m), "|{d}| outside [1/2, 2]");
        }
    }

    #[test]
    fn offdiag_values_in_band() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = offdiag_value(&mut rng);
            assert!((-2.0..2.0).contains(&v));
        }
    }

    #[test]
    fn signs_are_mixed() {
        let mut rng = SmallRng::seed_from_u64(11);
        let negs = (0..1000).filter(|_| diag_value(&mut rng) < 0.0).count();
        assert!(negs > 300 && negs < 700, "sign split {negs}/1000 looks biased");
    }
}
