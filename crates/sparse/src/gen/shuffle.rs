//! Block-shuffled orderings: locally contiguous, globally arbitrary.
//!
//! Application matrices (FEM meshes in particular) are numbered in an order
//! that is *locally* contiguous — elements assembled one after another — but
//! *globally* arbitrary. Two consequences matter for scheduling:
//!
//! * good data locality over short ID ranges, and
//! * many DAG sources (rows whose neighbours all have larger indices,
//!   i.e. local minima of the numbering).
//!
//! A perfectly lexicographic stencil ordering has only a single source, which
//! no real application matrix exhibits (and which degenerates any
//! exclusivity-growing scheduler into one serial superstep). Shuffling
//! fixed-size blocks of consecutive indices reproduces the realistic regime:
//! locality within blocks is preserved while block-level local minima create
//! `O(n/block)` sources.

use crate::perm::Permutation;
use rand::seq::SliceRandom;
use rand::Rng;

/// A permutation of `0..n` that keeps blocks of `block` consecutive indices
/// intact but places the blocks in random order.
pub fn block_shuffle_permutation<R: Rng + ?Sized>(
    n: usize,
    block: usize,
    rng: &mut R,
) -> Permutation {
    assert!(block > 0, "block size must be positive");
    let n_blocks = n.div_ceil(block);
    let mut blocks: Vec<usize> = (0..n_blocks).collect();
    blocks.shuffle(rng);
    let mut old_of_new = Vec::with_capacity(n);
    for &b in &blocks {
        let start = b * block;
        let end = (start + block).min(n);
        old_of_new.extend(start..end);
    }
    Permutation::from_old_of_new(old_of_new).expect("block shuffle is a bijection")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn is_a_permutation_and_keeps_blocks() {
        let mut rng = SmallRng::seed_from_u64(3);
        let p = block_shuffle_permutation(100, 8, &mut rng);
        assert_eq!(p.len(), 100);
        // The image decomposes into at most ceil(100/8) consecutive runs,
        // each no longer than the block size (the ragged tail block may land
        // anywhere, so runs are not aligned to multiples of 8).
        let o = p.old_of_new();
        let mut runs = 1usize;
        for w in o.windows(2) {
            if w[1] != w[0] + 1 {
                runs += 1;
            }
        }
        // Adjacent blocks may land next to each other and merge runs, so the
        // count is at most the block count; more than one run proves the
        // shuffle actually moved something.
        assert!((2..=13).contains(&runs), "{runs} runs for 13 blocks");
    }

    #[test]
    fn ragged_tail_handled() {
        let mut rng = SmallRng::seed_from_u64(4);
        let p = block_shuffle_permutation(10, 4, &mut rng);
        assert_eq!(p.len(), 10);
    }

    #[test]
    fn creates_many_dag_sources_on_a_grid() {
        use crate::gen::grid::{grid2d_laplacian, Stencil2D};
        let mut rng = SmallRng::seed_from_u64(5);
        let a = grid2d_laplacian(30, 30, Stencil2D::FivePoint, 0.5);
        let p = block_shuffle_permutation(900, 16, &mut rng);
        let shuffled = a.symmetric_permute(&p).unwrap();
        let l = shuffled.lower_triangle().unwrap();
        // Count rows whose only lower-triangular entry is the diagonal.
        let sources = (0..900).filter(|&r| l.row_nnz(r) == 1).count();
        assert!(sources > 10, "only {sources} sources — shuffle too weak");
    }
}
