//! Erdős–Rényi random lower-triangular matrices (§6.2.4).
//!
//! Each strictly-lower entry `(i, j)`, `i > j`, is independently non-zero with
//! probability `p`; diagonal entries are always present. The corresponding
//! solve DAG is a directed Erdős–Rényi graph. These matrices have few, large
//! wavefronts and are therefore *easy* to parallelize — the benign end of the
//! paper's random spectrum.

use crate::csr::CsrMatrix;
use crate::gen::values::{diag_value, offdiag_value};
use rand::Rng;

/// Generates an `n x n` lower-triangular Erdős–Rényi matrix with strictly
/// lower-triangular density `p`.
///
/// Uses geometric skip-sampling within each row, so generation costs
/// `O(n + nnz)` regardless of how small `p` is.
pub fn erdos_renyi_lower<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> CsrMatrix {
    assert!((0.0..=1.0).contains(&p), "probability p={p} outside [0, 1]");
    let expected = (p * (n as f64) * (n as f64) / 2.0) as usize + n;
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::with_capacity(expected);
    let mut values = Vec::with_capacity(expected);
    row_ptr.push(0);
    let log1mp = if p < 1.0 { (1.0 - p).ln() } else { 0.0 };
    for i in 0..n {
        if p >= 1.0 {
            for j in 0..i {
                col_idx.push(j);
                values.push(offdiag_value(rng));
            }
        } else if p > 0.0 {
            // Skip-sample the strictly-lower part of row i (columns 0..i).
            let mut j = 0usize;
            loop {
                // Geometric(p) gap: number of misses before the next hit.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let skip = (u.ln() / log1mp).floor() as usize;
                j = match j.checked_add(skip) {
                    Some(v) => v,
                    None => break,
                };
                if j >= i {
                    break;
                }
                col_idx.push(j);
                values.push(offdiag_value(rng));
                j += 1;
            }
        }
        col_idx.push(i);
        values.push(diag_value(rng));
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_raw_unchecked(n, n, row_ptr, col_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn structure_is_lower_triangular_with_diagonal() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = erdos_renyi_lower(200, 0.05, &mut rng);
        assert!(m.is_lower_triangular());
        assert!(m.has_nonzero_diagonal());
    }

    #[test]
    fn density_close_to_p() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 400;
        let p = 0.02;
        let m = erdos_renyi_lower(n, p, &mut rng);
        let strictly_lower = (m.nnz() - n) as f64;
        let pairs = (n * (n - 1) / 2) as f64;
        let observed = strictly_lower / pairs;
        assert!(
            (observed - p).abs() < 0.005,
            "observed density {observed} too far from requested {p}"
        );
    }

    #[test]
    fn extreme_probabilities() {
        let mut rng = SmallRng::seed_from_u64(3);
        let empty = erdos_renyi_lower(50, 0.0, &mut rng);
        assert_eq!(empty.nnz(), 50); // diagonal only
        let full = erdos_renyi_lower(50, 1.0, &mut rng);
        assert_eq!(full.nnz(), 50 * 51 / 2);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = erdos_renyi_lower(100, 0.05, &mut SmallRng::seed_from_u64(9));
        let b = erdos_renyi_lower(100, 0.05, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
