//! Narrow-bandwidth random matrices (§6.2.5).
//!
//! Entry `(i, j)` with `i > j` is non-zero with probability
//! `p · exp((1 + j − i) / B)`, concentrating the non-zeros near the diagonal.
//! The resulting solve DAGs have long dependency chains (many wavefronts) and
//! are *hard* to parallelize by design, while retaining good locality —
//! exactly the regime where GrowLocal separates most clearly from the
//! baselines (Table 7.1, last row).

use crate::csr::CsrMatrix;
use crate::gen::values::{diag_value, offdiag_value};
use rand::Rng;

/// Probability of a non-zero at distance `d = i - j >= 1` below the diagonal.
#[inline]
fn band_probability(p: f64, b: f64, d: usize) -> f64 {
    (p * ((1.0 - d as f64) / b).exp()).min(1.0)
}

/// Generates an `n x n` lower-triangular narrow-bandwidth matrix with base
/// probability `p` and bandwidth parameter `b` (the paper's `B`).
///
/// Distances where the probability falls below `1e-12` are skipped, bounding
/// the work per row by `O(B·ln(p/1e-12))`.
pub fn narrow_band_lower<R: Rng + ?Sized>(n: usize, p: f64, b: f64, rng: &mut R) -> CsrMatrix {
    assert!(p > 0.0 && p <= 1.0, "probability p={p} outside (0, 1]");
    assert!(b > 0.0, "bandwidth B={b} must be positive");
    // Largest distance worth sampling: p·e^{(1-d)/B} < 1e-12 ⇔ d > 1 + B·ln(p·1e12).
    let d_max = ((1.0 + b * (p * 1e12).ln()).ceil().max(1.0) as usize).min(n);
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    row_ptr.push(0);
    let mut scratch: Vec<usize> = Vec::new();
    for i in 0..n {
        scratch.clear();
        let lo = i.saturating_sub(d_max);
        for j in lo..i {
            let d = i - j;
            if rng.gen_bool(band_probability(p, b, d)) {
                scratch.push(j);
            }
        }
        for &j in &scratch {
            col_idx.push(j);
            values.push(offdiag_value(rng));
        }
        col_idx.push(i);
        values.push(diag_value(rng));
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_raw_unchecked(n, n, row_ptr, col_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn structure_is_lower_triangular_with_diagonal() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = narrow_band_lower(300, 0.14, 10.0, &mut rng);
        assert!(m.is_lower_triangular());
        assert!(m.has_nonzero_diagonal());
    }

    #[test]
    fn entries_concentrate_near_diagonal() {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = narrow_band_lower(1000, 0.14, 10.0, &mut rng);
        let mut near = 0usize;
        let mut far = 0usize;
        for (r, c, _) in m.iter() {
            if r == c {
                continue;
            }
            // With B = 10, a fraction 1 - e^{-3} ≈ 95% of off-diagonal mass
            // lies within distance 30 of the diagonal.
            if r - c <= 30 {
                near += 1;
            } else {
                far += 1;
            }
        }
        assert!(near > 8 * (far + 1), "band not concentrated: near={near} far={far}");
    }

    #[test]
    fn nnz_matches_paper_scale() {
        // Paper Table A.5: (p, B) = (0.14, 10) at N = 100,000 reports ~147k
        // sampled entries. Analytically the strictly-lower expectation per row
        // is p·Σ_{d≥1} e^{(1-d)/B} = p / (1 - e^{-1/B}) ≈ 1.47, which matches
        // the table (their counts exclude the always-present diagonal).
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let m = narrow_band_lower(n, 0.14, 10.0, &mut rng);
        let strictly_lower_rate = (m.nnz() - n) as f64 / n as f64;
        assert!(
            (1.35..1.60).contains(&strictly_lower_rate),
            "strictly-lower nnz/row = {strictly_lower_rate}, expected ~1.47"
        );
    }

    #[test]
    fn probability_decays() {
        assert!(band_probability(0.14, 10.0, 1) > band_probability(0.14, 10.0, 5));
        assert!(band_probability(0.14, 10.0, 100) < 1e-4);
    }
}
