//! Finite-difference stencil Laplacians on regular 2D/3D grids.
//!
//! These symmetric positive-definite matrices are the offline stand-in for
//! the SuiteSparse application matrices (DESIGN.md, substitution 1): the SPD
//! members of the collection are dominated by FEM/FDM mesh discretizations
//! with exactly this banded, locality-friendly structure. The grid aspect
//! ratio controls the *average wavefront size* of the lower-triangular solve
//! DAG (the paper's parallelizability proxy): a `w × h` five-point grid in
//! lexicographic order has longest path `w + h − 1`, so its average wavefront
//! is `w·h / (w + h − 1)`.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// Stencil choices for [`grid2d_laplacian`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stencil2D {
    /// 4-neighbour coupling (classic 5-point Laplacian).
    FivePoint,
    /// 8-neighbour coupling (adds the diagonals), denser rows — closer to
    /// bilinear quadrilateral FEM stiffness matrices.
    NinePoint,
}

/// Stencil choices for [`grid3d_laplacian`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stencil3D {
    /// 6-neighbour coupling (7-point Laplacian).
    SevenPoint,
    /// 26-neighbour coupling — trilinear hexahedral FEM-like density.
    TwentySevenPoint,
}

/// SPD stencil matrix on a `w x h` grid in lexicographic (row-major) order.
///
/// Off-diagonal entries are `-1` (5-point) with `-0.5` on diagonal neighbours
/// (9-point); the diagonal is the absolute row sum plus `shift`, making the
/// matrix strictly diagonally dominant and hence SPD for any `shift > 0`.
pub fn grid2d_laplacian(w: usize, h: usize, stencil: Stencil2D, shift: f64) -> CsrMatrix {
    assert!(w > 0 && h > 0, "grid dimensions must be positive");
    let n = w * h;
    let per_row = match stencil {
        Stencil2D::FivePoint => 5,
        Stencil2D::NinePoint => 9,
    };
    let mut coo = CooMatrix::with_capacity(n, n, n * per_row);
    let idx = |x: usize, y: usize| y * w + x;
    for y in 0..h {
        for x in 0..w {
            let i = idx(x, y);
            let mut row_sum = 0.0;
            let mut push = |dx: isize, dy: isize, weight: f64| {
                let nx = x as isize + dx;
                let ny = y as isize + dy;
                if nx >= 0 && ny >= 0 && (nx as usize) < w && (ny as usize) < h {
                    coo.push(i, idx(nx as usize, ny as usize), -weight).unwrap();
                    row_sum += weight;
                }
            };
            push(-1, 0, 1.0);
            push(1, 0, 1.0);
            push(0, -1, 1.0);
            push(0, 1, 1.0);
            if stencil == Stencil2D::NinePoint {
                push(-1, -1, 0.5);
                push(1, -1, 0.5);
                push(-1, 1, 0.5);
                push(1, 1, 0.5);
            }
            coo.push(i, i, row_sum + shift).unwrap();
        }
    }
    coo.to_csr()
}

/// SPD stencil matrix on a `w x h x d` grid in lexicographic order.
pub fn grid3d_laplacian(w: usize, h: usize, d: usize, stencil: Stencil3D, shift: f64) -> CsrMatrix {
    assert!(w > 0 && h > 0 && d > 0, "grid dimensions must be positive");
    let n = w * h * d;
    let per_row = match stencil {
        Stencil3D::SevenPoint => 7,
        Stencil3D::TwentySevenPoint => 27,
    };
    let mut coo = CooMatrix::with_capacity(n, n, n * per_row);
    let idx = |x: usize, y: usize, z: usize| (z * h + y) * w + x;
    for z in 0..d {
        for y in 0..h {
            for x in 0..w {
                let i = idx(x, y, z);
                let mut row_sum = 0.0;
                let mut push = |dx: isize, dy: isize, dz: isize, weight: f64| {
                    let nx = x as isize + dx;
                    let ny = y as isize + dy;
                    let nz = z as isize + dz;
                    if nx >= 0
                        && ny >= 0
                        && nz >= 0
                        && (nx as usize) < w
                        && (ny as usize) < h
                        && (nz as usize) < d
                    {
                        coo.push(i, idx(nx as usize, ny as usize, nz as usize), -weight).unwrap();
                        row_sum += weight;
                    }
                };
                match stencil {
                    Stencil3D::SevenPoint => {
                        push(-1, 0, 0, 1.0);
                        push(1, 0, 0, 1.0);
                        push(0, -1, 0, 1.0);
                        push(0, 1, 0, 1.0);
                        push(0, 0, -1, 1.0);
                        push(0, 0, 1, 1.0);
                    }
                    Stencil3D::TwentySevenPoint => {
                        for dz in -1..=1isize {
                            for dy in -1..=1isize {
                                for dx in -1..=1isize {
                                    if dx == 0 && dy == 0 && dz == 0 {
                                        continue;
                                    }
                                    let dist = (dx.abs() + dy.abs() + dz.abs()) as f64;
                                    push(dx, dy, dz, 1.0 / dist);
                                }
                            }
                        }
                    }
                }
                coo.push(i, i, row_sum + shift).unwrap();
            }
        }
    }
    coo.to_csr()
}

/// Block-diagonal SPD matrix made of `blocks` independent dense-ish SPD
/// blocks of size `block_size`.
///
/// Stand-in for the extremely parallel SuiteSparse members (e.g.
/// `bundle_adj`, average wavefront ≈ 57k): the solve DAG decomposes into
/// `blocks` independent chains, so the average wavefront is `blocks`.
pub fn block_diagonal_spd(blocks: usize, block_size: usize, shift: f64) -> CsrMatrix {
    assert!(blocks > 0 && block_size > 0);
    let n = blocks * block_size;
    let mut coo = CooMatrix::with_capacity(n, n, blocks * block_size * 3);
    for blk in 0..blocks {
        let base = blk * block_size;
        for r in 0..block_size {
            let i = base + r;
            let mut row_sum = 0.0;
            if r > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
                row_sum += 1.0;
            }
            if r + 1 < block_size {
                coo.push(i, i + 1, -1.0).unwrap();
                row_sum += 1.0;
            }
            coo.push(i, i, row_sum + shift).unwrap();
        }
    }
    coo.to_csr()
}

/// Supernodal SPD matrix: `blocks` *dense* diagonal blocks of size
/// `block_size`, each block (after the first) coupled symmetrically to
/// `couplings` shared earlier columns — the same columns for every row of
/// the block.
///
/// This is the factor-like structure the kernel layer's supernode
/// detection targets: each block's lower triangle is a full dense triangle
/// over a *shared* off-block column set, so packing it column-major is
/// lossless (zero padding). Incomplete-factor and §5 locality-reordered
/// operands approach this shape; chained bundles ([`block_diagonal_spd`])
/// deliberately do not — their packed form would inflate the arithmetic,
/// and the detection cost guard rejects them.
pub fn supernodal_spd(blocks: usize, block_size: usize, couplings: usize, shift: f64) -> CsrMatrix {
    assert!(blocks > 0 && block_size > 0, "shape must be positive");
    let n = blocks * block_size;
    let mut coo = CooMatrix::with_capacity(n, n, n * (block_size + 2 * couplings));
    let mut off_sum = vec![0.0; n];
    for blk in 0..blocks {
        let base = blk * block_size;
        // Shared off-block parents: the last `couplings` rows before the
        // block (none for the first block).
        let parents: Vec<usize> = (0..couplings.min(base)).map(|t| base - 1 - t).collect();
        for r in 0..block_size {
            let i = base + r;
            for s in 0..block_size {
                if s == r {
                    continue;
                }
                let w = 1.0 / (1.0 + (r as f64 - s as f64).abs());
                coo.push(i, base + s, -w).unwrap();
                off_sum[i] += w;
            }
            for &c in &parents {
                coo.push(i, c, -0.25).unwrap();
                coo.push(c, i, -0.25).unwrap();
                off_sum[i] += 0.25;
                off_sum[c] += 0.25;
            }
        }
    }
    // Diagonals last so every coupling is already in the row sums: the
    // matrix stays strictly diagonally dominant for any `shift > 0`.
    for (i, &s) in off_sum.iter().enumerate() {
        coo.push(i, i, s + shift).unwrap();
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_symmetric(m: &CsrMatrix) -> bool {
        m.iter().all(|(r, c, v)| m.get(c, r) == Some(v))
    }

    fn is_diag_dominant(m: &CsrMatrix) -> bool {
        (0..m.n_rows()).all(|r| {
            let (cols, vals) = m.row(r);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c == r {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            diag > off
        })
    }

    #[test]
    fn grid2d_five_point_structure() {
        let m = grid2d_laplacian(4, 3, Stencil2D::FivePoint, 0.5);
        assert_eq!(m.n_rows(), 12);
        assert!(is_symmetric(&m));
        assert!(is_diag_dominant(&m));
        // Interior vertex has 4 neighbours + diagonal.
        assert_eq!(m.row_nnz(5), 5);
        // Corner has 2 neighbours + diagonal.
        assert_eq!(m.row_nnz(0), 3);
    }

    #[test]
    fn grid2d_nine_point_denser() {
        let five = grid2d_laplacian(10, 10, Stencil2D::FivePoint, 0.5);
        let nine = grid2d_laplacian(10, 10, Stencil2D::NinePoint, 0.5);
        assert!(nine.nnz() > five.nnz());
        assert!(is_symmetric(&nine));
        assert!(is_diag_dominant(&nine));
    }

    #[test]
    fn grid3d_structures() {
        let seven = grid3d_laplacian(4, 4, 4, Stencil3D::SevenPoint, 0.5);
        assert_eq!(seven.n_rows(), 64);
        assert!(is_symmetric(&seven));
        assert!(is_diag_dominant(&seven));
        // Interior vertex: 6 neighbours + diagonal.
        let interior = (4 + 1) * 4 + 1;
        assert_eq!(seven.row_nnz(interior), 7);
        let dense = grid3d_laplacian(4, 4, 4, Stencil3D::TwentySevenPoint, 0.5);
        assert_eq!(dense.row_nnz(interior), 27);
        assert!(is_symmetric(&dense));
    }

    #[test]
    fn supernodal_blocks_are_dense_and_coupled() {
        let m = supernodal_spd(4, 6, 2, 0.5);
        assert_eq!(m.n_rows(), 24);
        assert!(is_symmetric(&m));
        assert!(is_diag_dominant(&m));
        // Every row of a non-first block sees the same two parents.
        for r in 6..12 {
            assert!(m.get(r, 5).is_some(), "row {r} lacks parent 5");
            assert!(m.get(r, 4).is_some(), "row {r} lacks parent 4");
        }
        // In-block coupling is fully dense.
        for r in 6..12 {
            for c in 6..12 {
                assert!(m.get(r, c).is_some(), "block entry ({r}, {c}) missing");
            }
        }
        // No coupling beyond the shared parents.
        assert_eq!(m.get(7, 3), None);
    }

    #[test]
    fn block_diagonal_is_decoupled() {
        let m = block_diagonal_spd(3, 4, 0.5);
        assert_eq!(m.n_rows(), 12);
        assert!(is_symmetric(&m));
        // No coupling across block boundary between rows 3 and 4.
        assert_eq!(m.get(4, 3), None);
        assert_eq!(m.get(3, 4), None);
    }
}
