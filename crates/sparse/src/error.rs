//! Error type shared by the sparse substrate.

use std::fmt;

/// Errors produced while building, transforming or factorizing sparse matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// An entry coordinate lies outside the declared matrix dimensions.
    IndexOutOfBounds { row: usize, col: usize, n_rows: usize, n_cols: usize },
    /// A structural invariant of the storage format is violated.
    InvalidStructure(String),
    /// The operation needs a square matrix.
    NotSquare { n_rows: usize, n_cols: usize },
    /// The operation needs a (lower/upper) triangular matrix with a full diagonal.
    NotTriangular(String),
    /// A zero (or missing) diagonal entry makes the triangular solve singular.
    SingularDiagonal { row: usize },
    /// Incomplete Cholesky broke down even after the maximum diagonal shift.
    FactorizationBreakdown { row: usize, pivot: f64 },
    /// A permutation vector is not a bijection on `0..n`.
    InvalidPermutation(String),
    /// Matrix Market parsing failed.
    Parse(String),
    /// Underlying I/O failure.
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col, n_rows, n_cols } => {
                write!(f, "entry ({row}, {col}) out of bounds for a {n_rows}x{n_cols} matrix")
            }
            SparseError::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            SparseError::NotSquare { n_rows, n_cols } => {
                write!(f, "operation requires a square matrix, got {n_rows}x{n_cols}")
            }
            SparseError::NotTriangular(msg) => write!(f, "matrix is not triangular: {msg}"),
            SparseError::SingularDiagonal { row } => {
                write!(f, "zero or missing diagonal entry in row {row}")
            }
            SparseError::FactorizationBreakdown { row, pivot } => {
                write!(f, "incomplete Cholesky breakdown at row {row} (pivot {pivot})")
            }
            SparseError::InvalidPermutation(msg) => write!(f, "invalid permutation: {msg}"),
            SparseError::Parse(msg) => write!(f, "parse error: {msg}"),
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}
