//! Matrix Market (`.mtx`) reading and writing.
//!
//! Supports the `matrix coordinate real/integer/pattern general/symmetric`
//! subset, which covers the SuiteSparse collection the paper evaluates on.
//! Symmetric files are expanded to full storage on read (only the lower
//! triangle is stored in the file, per the format specification).

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::Result;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Symmetry declared in the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Only the lower triangle stored; `(i, j)` implies `(j, i)`.
    Symmetric,
}

/// Reads a Matrix Market file from disk.
pub fn read_matrix_market_file<P: AsRef<Path>>(path: P) -> Result<CsrMatrix> {
    let file = std::fs::File::open(path)?;
    read_matrix_market(BufReader::new(file))
}

/// Reads a Matrix Market stream.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrMatrix> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| SparseError::Parse("empty file".into()))?
        .map_err(SparseError::from)?;
    let lower = header.to_ascii_lowercase();
    let fields: Vec<&str> = lower.split_whitespace().collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(SparseError::Parse(format!("bad header: {header}")));
    }
    if fields[2] != "coordinate" {
        return Err(SparseError::Parse(format!("unsupported format {}", fields[2])));
    }
    let pattern = match fields[3] {
        "real" | "integer" => false,
        "pattern" => true,
        other => return Err(SparseError::Parse(format!("unsupported field type {other}"))),
    };
    let symmetry = match fields[4] {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        other => return Err(SparseError::Parse(format!("unsupported symmetry {other}"))),
    };

    // Skip comments, read the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(SparseError::from)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(trimmed.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| SparseError::Parse("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>().map_err(|e| SparseError::Parse(e.to_string())))
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Parse(format!("bad size line: {size_line}")));
    }
    let (n_rows, n_cols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(
        n_rows,
        n_cols,
        if symmetry == MmSymmetry::Symmetric { 2 * nnz } else { nnz },
    );
    let mut read = 0usize;
    for line in lines {
        let line = line.map_err(SparseError::from)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse("missing row index".into()))?
            .parse()
            .map_err(|e: std::num::ParseIntError| SparseError::Parse(e.to_string()))?;
        let c: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse("missing col index".into()))?
            .parse()
            .map_err(|e: std::num::ParseIntError| SparseError::Parse(e.to_string()))?;
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| SparseError::Parse("missing value".into()))?
                .parse()
                .map_err(|e: std::num::ParseFloatError| SparseError::Parse(e.to_string()))?
        };
        if r == 0 || c == 0 {
            return Err(SparseError::Parse("matrix market indices are 1-based".into()));
        }
        coo.push(r - 1, c - 1, v)?;
        if symmetry == MmSymmetry::Symmetric && r != c {
            coo.push(c - 1, r - 1, v)?;
        }
        read += 1;
    }
    if read != nnz {
        return Err(SparseError::Parse(format!("expected {nnz} entries, found {read}")));
    }
    Ok(coo.to_csr())
}

/// Writes a matrix in `matrix coordinate real general` format.
pub fn write_matrix_market<W: Write>(matrix: &CsrMatrix, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", matrix.n_rows(), matrix.n_cols(), matrix.nnz())?;
    for (r, c, v) in matrix.iter() {
        writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a matrix to a `.mtx` file on disk.
pub fn write_matrix_market_file<P: AsRef<Path>>(matrix: &CsrMatrix, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_matrix_market(matrix, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_general() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 0, 1.5).unwrap();
        coo.push(2, 3, -2.25).unwrap();
        coo.push(1, 1, 7.0).unwrap();
        let m = coo.to_csr();
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn symmetric_expansion() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n% comment\n3 3 3\n1 1 2.0\n2 1 1.0\n3 3 4.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), Some(1.0));
        assert_eq!(m.get(1, 0), Some(1.0));
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn pattern_matrices_get_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 1\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 0), Some(1.0));
        assert_eq!(m.get(1, 0), Some(1.0));
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(read_matrix_market("garbage\n".as_bytes()).is_err());
        assert!(read_matrix_market("%%MatrixMarket matrix array real general\n2 2\n".as_bytes())
            .is_err());
        // nnz mismatch.
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
        // 0-based index.
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }
}
