//! Dense-vector kernels and sparse matrix–vector products.
//!
//! These are the building blocks of the application drivers (e.g. the
//! preconditioned conjugate-gradient example) and of the residual checks used
//! to verify every parallel solve against the serial one.

use crate::csr::CsrMatrix;

/// Dot product of two equal-length vectors.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// Sparse matrix–vector product `y = A x`.
pub fn spmv(a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(a.n_cols(), x.len());
    debug_assert_eq!(a.n_rows(), y.len());
    for (r, out) in y.iter_mut().enumerate() {
        let (cols, vals) = a.row(r);
        let mut acc = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            acc += v * x[c];
        }
        *out = acc;
    }
}

/// Residual vector `r = b - A x`.
pub fn residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> Vec<f64> {
    let mut ax = vec![0.0; a.n_rows()];
    spmv(a, x, &mut ax);
    b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect()
}

/// Relative residual `||b - A x||_2 / ||b||_2` (returns the absolute norm if
/// `b` is the zero vector).
pub fn relative_residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
    let r = norm2(&residual(a, x, b));
    let nb = norm2(b);
    if nb > 0.0 {
        r / nb
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn dot_axpy_norms() {
        let x = [1.0, 2.0, -2.0];
        let y = [3.0, 0.0, 1.0];
        assert_eq!(dot(&x, &y), 1.0);
        assert_eq!(norm2(&x), 3.0);
        assert_eq!(norm_inf(&x), 2.0);
        let mut z = y;
        axpy(2.0, &x, &mut z);
        assert_eq!(z, [5.0, 4.0, -3.0]);
    }

    #[test]
    fn spmv_and_residual() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        let a = coo.to_csr();
        let x = [1.0, 2.0];
        let mut y = vec![0.0; 2];
        spmv(&a, &x, &mut y);
        assert_eq!(y, vec![2.0, 7.0]);
        let b = [2.0, 7.0];
        assert_eq!(relative_residual(&a, &x, &b), 0.0);
        assert!(relative_residual(&a, &[0.0, 0.0], &b) > 0.9);
    }
}
