//! Coordinate (triplet) format used for matrix assembly.
//!
//! The COO format is the natural target of generators and file readers; it is
//! converted to [`CsrMatrix`] before any numerical work.
//! Duplicate entries are summed on conversion, matching the usual
//! finite-element assembly semantics.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::Result;

/// A sparse matrix in coordinate (triplet) format.
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    n_rows: usize,
    n_cols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    values: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `n_rows x n_cols` triplet container.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        CooMatrix { n_rows, n_cols, rows: Vec::new(), cols: Vec::new(), values: Vec::new() }
    }

    /// Creates an empty container with reserved capacity for `cap` entries.
    pub fn with_capacity(n_rows: usize, n_cols: usize, cap: usize) -> Self {
        CooMatrix {
            n_rows,
            n_cols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored triplets (duplicates counted individually).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Appends the triplet `(row, col, value)`.
    ///
    /// Bounds are checked eagerly so assembly bugs surface at the push site.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.n_rows || col >= self.n_cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                n_rows: self.n_rows,
                n_cols: self.n_cols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.values.push(value);
        Ok(())
    }

    /// Iterates over the stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.values.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Converts to CSR, summing duplicate entries and dropping exact zeros
    /// that result from cancellation.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row, then sort each row segment by column and sum
        // duplicates. This is O(nnz log(max row length)).
        let mut counts = vec![0usize; self.n_rows + 1];
        for &r in &self.rows {
            counts[r + 1] += 1;
        }
        for i in 0..self.n_rows {
            counts[i + 1] += counts[i];
        }
        let mut order: Vec<usize> = (0..self.values.len()).collect();
        // Stable bucket placement by row.
        let mut cursor = counts.clone();
        let mut placed = vec![0usize; self.values.len()];
        for (idx, &r) in self.rows.iter().enumerate() {
            placed[cursor[r]] = idx;
            cursor[r] += 1;
        }
        order.copy_from_slice(&placed);

        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        let mut col_idx: Vec<usize> = Vec::with_capacity(self.values.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.values.len());
        row_ptr.push(0);
        let mut seg: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.n_rows {
            seg.clear();
            for &idx in &order[counts[r]..counts[r + 1]] {
                seg.push((self.cols[idx], self.values[idx]));
            }
            seg.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < seg.len() {
                let c = seg[i].0;
                let mut v = seg[i].1;
                let mut j = i + 1;
                while j < seg.len() && seg[j].0 == c {
                    v += seg[j].1;
                    j += 1;
                }
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
                i = j;
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw_unchecked(self.n_rows, self.n_cols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_convert_sums_duplicates() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(2, 1, 2.0).unwrap();
        coo.push(2, 1, 3.0).unwrap();
        coo.push(1, 1, 4.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(2, 1), Some(5.0));
        assert_eq!(csr.get(1, 1), Some(4.0));
        assert_eq!(csr.get(0, 1), None);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 5, 1.0).is_err());
    }

    #[test]
    fn cancellation_drops_entry() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 2.0).unwrap();
        coo.push(0, 1, -2.0).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
    }

    #[test]
    fn empty_matrix() {
        let coo = CooMatrix::new(4, 4);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.n_rows(), 4);
    }
}
