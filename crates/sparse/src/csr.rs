//! Compressed sparse row (CSR) storage.
//!
//! CSR is the working format of the whole workspace: the forward-substitution
//! kernel iterates rows in order (§6.1 of the paper), the DAG of the solve is
//! derived from the row structure, and the locality reordering (§5) is a
//! symmetric permutation of this representation.

use crate::error::SparseError;
use crate::perm::Permutation;
use crate::Result;

/// A sparse matrix in compressed sparse row format with `f64` values.
///
/// Invariants (enforced by [`CsrMatrix::from_raw`], preserved by all methods):
/// * `row_ptr.len() == n_rows + 1`, `row_ptr[0] == 0`, non-decreasing,
///   `row_ptr[n_rows] == col_idx.len() == values.len()`;
/// * within each row, column indices are strictly increasing and `< n_cols`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

/// Which triangle of the matrix carries the stored entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triangle {
    /// Entries satisfy `col <= row`.
    Lower,
    /// Entries satisfy `col >= row`.
    Upper,
}

impl CsrMatrix {
    /// Builds a CSR matrix after validating all structural invariants.
    pub fn from_raw(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != n_rows + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "row_ptr has length {}, expected {}",
                row_ptr.len(),
                n_rows + 1
            )));
        }
        if row_ptr[0] != 0 {
            return Err(SparseError::InvalidStructure("row_ptr[0] != 0".into()));
        }
        if *row_ptr.last().unwrap() != col_idx.len() || col_idx.len() != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "row_ptr end {} vs col_idx {} vs values {}",
                row_ptr.last().unwrap(),
                col_idx.len(),
                values.len()
            )));
        }
        for r in 0..n_rows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(SparseError::InvalidStructure(format!("row_ptr decreases at row {r}")));
            }
            let cols = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidStructure(format!(
                        "columns not strictly increasing in row {r}"
                    )));
                }
            }
            if let Some(&c) = cols.last() {
                if c >= n_cols {
                    return Err(SparseError::IndexOutOfBounds { row: r, col: c, n_rows, n_cols });
                }
            }
        }
        Ok(CsrMatrix { n_rows, n_cols, row_ptr, col_idx, values })
    }

    /// Builds a CSR matrix without validation.
    ///
    /// Intended for internal constructors that produce structurally sound data
    /// (e.g. [`CooMatrix::to_csr`](crate::CooMatrix::to_csr)). Invariant
    /// violations here are library bugs, and debug builds assert them.
    pub fn from_raw_unchecked(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert!(CsrMatrix::from_raw(
            n_rows,
            n_cols,
            row_ptr.clone(),
            col_idx.clone(),
            values.clone()
        )
        .is_ok());
        CsrMatrix { n_rows, n_cols, row_ptr, col_idx, values }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of explicitly stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row-pointer array (`n_rows + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// [`Self::row`] without bounds checks — for validated inner loops
    /// (the fastmath kernels, which visit every row of a plan that was
    /// built for this matrix).
    ///
    /// # Safety
    /// `r` must be a valid row index (`r < self.n_rows()`).
    #[inline]
    pub unsafe fn row_unchecked(&self, r: usize) -> (&[usize], &[f64]) {
        debug_assert!(r < self.n_rows);
        // SAFETY: `row_ptr` has `n_rows + 1` monotone entries bounded by
        // `col_idx.len() == values.len()` (construction invariant), so for
        // any valid `r` the span is in bounds for both arrays.
        unsafe {
            let lo = *self.row_ptr.get_unchecked(r);
            let hi = *self.row_ptr.get_unchecked(r + 1);
            (self.col_idx.get_unchecked(lo..hi), self.values.get_unchecked(lo..hi))
        }
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Value at `(row, col)` if stored (binary search within the row).
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        let (cols, vals) = self.row(row);
        cols.binary_search(&col).ok().map(|k| vals[k])
    }

    /// Iterates `(row, col, value)` over all stored entries in row order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n_rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals.iter()).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Whether every stored entry satisfies `col <= row`.
    pub fn is_lower_triangular(&self) -> bool {
        (0..self.n_rows).all(|r| self.row(r).0.iter().all(|&c| c <= r))
    }

    /// Whether every stored entry satisfies `col >= row`.
    pub fn is_upper_triangular(&self) -> bool {
        (0..self.n_rows).all(|r| self.row(r).0.iter().all(|&c| c >= r))
    }

    /// Whether the matrix is square with a stored, non-zero diagonal entry in
    /// every row — the non-singularity precondition of the substitution
    /// algorithm (§2.2).
    pub fn has_nonzero_diagonal(&self) -> bool {
        self.n_rows == self.n_cols
            && (0..self.n_rows).all(|r| self.get(r, r).is_some_and(|v| v != 0.0))
    }

    /// Checks that the matrix is a valid SpTRSV operand: square, triangular in
    /// the requested orientation, and with a non-zero diagonal.
    pub fn validate_triangular(&self, tri: Triangle) -> Result<()> {
        if self.n_rows != self.n_cols {
            return Err(SparseError::NotSquare { n_rows: self.n_rows, n_cols: self.n_cols });
        }
        let ok = match tri {
            Triangle::Lower => self.is_lower_triangular(),
            Triangle::Upper => self.is_upper_triangular(),
        };
        if !ok {
            return Err(SparseError::NotTriangular(format!("{tri:?} triangle expected")));
        }
        for r in 0..self.n_rows {
            if !self.get(r, r).is_some_and(|v| v != 0.0) {
                return Err(SparseError::SingularDiagonal { row: r });
            }
        }
        Ok(())
    }

    /// The main diagonal as a dense vector (missing entries are `0`).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.n_rows.min(self.n_cols)).map(|r| self.get(r, r).unwrap_or(0.0)).collect()
    }

    /// Extracts the lower triangle (including the diagonal) of a square matrix.
    pub fn lower_triangle(&self) -> Result<CsrMatrix> {
        if self.n_rows != self.n_cols {
            return Err(SparseError::NotSquare { n_rows: self.n_rows, n_cols: self.n_cols });
        }
        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if c <= r {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix::from_raw_unchecked(self.n_rows, self.n_cols, row_ptr, col_idx, values))
    }

    /// Transposes the matrix (CSR of `A^T`, i.e. a CSC view of `A`).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.n_cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.n_cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0f64; self.nnz()];
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let slot = counts[c];
                col_idx[slot] = r;
                values[slot] = v;
                counts[c] += 1;
            }
        }
        CsrMatrix::from_raw_unchecked(self.n_cols, self.n_rows, row_ptr, col_idx, values)
    }

    /// Symmetrically permutes a square matrix: `B[i][j] = A[p(i)][p(j)]` where
    /// `p(i)` is [`Permutation::old_of_new`]. This is the reordering primitive
    /// of §5; applied with a topological order it keeps triangular matrices
    /// triangular.
    pub fn symmetric_permute(&self, perm: &Permutation) -> Result<CsrMatrix> {
        if self.n_rows != self.n_cols {
            return Err(SparseError::NotSquare { n_rows: self.n_rows, n_cols: self.n_cols });
        }
        if perm.len() != self.n_rows {
            return Err(SparseError::InvalidPermutation(format!(
                "permutation length {} vs matrix dimension {}",
                perm.len(),
                self.n_rows
            )));
        }
        let new_of_old = perm.new_of_old();
        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        row_ptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for new_r in 0..self.n_rows {
            let old_r = perm.old_of_new()[new_r];
            let (cols, vals) = self.row(old_r);
            scratch.clear();
            scratch.extend(cols.iter().zip(vals).map(|(&c, &v)| (new_of_old[c], v)));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix::from_raw_unchecked(self.n_rows, self.n_cols, row_ptr, col_idx, values))
    }

    /// Dense representation; for tests and tiny examples only.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.n_cols]; self.n_rows];
        for (r, c, v) in self.iter() {
            d[r][c] = v;
        }
        d
    }

    /// Number of floating-point operations of one triangular solve with this
    /// matrix: `2·nnz − n` (§6.2.1, footnote 3).
    pub fn solve_flops(&self) -> usize {
        2 * self.nnz() - self.n_rows.min(self.nnz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn sample_lower() -> CsrMatrix {
        // Matrix of Figure 1.1 in the paper: rows a..f = 0..5.
        let mut coo = CooMatrix::new(6, 6);
        for i in 0..6 {
            coo.push(i, i, 2.0).unwrap();
        }
        // b<-a, c<-a, d<-b, d<-c, f<-c, e<-d (edges of Fig 1.1b).
        coo.push(1, 0, 1.0).unwrap();
        coo.push(2, 0, 1.0).unwrap();
        coo.push(3, 1, 1.0).unwrap();
        coo.push(3, 2, 1.0).unwrap();
        coo.push(5, 2, 1.0).unwrap();
        coo.push(4, 3, 1.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn structural_validation() {
        // row_ptr too short.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // column out of bounds.
        assert!(CsrMatrix::from_raw(1, 1, vec![0, 1], vec![3], vec![1.0]).is_err());
        // duplicate column in row.
        assert!(CsrMatrix::from_raw(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        // valid.
        assert!(CsrMatrix::from_raw(1, 3, vec![0, 2], vec![0, 2], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn triangular_predicates() {
        let l = sample_lower();
        assert!(l.is_lower_triangular());
        assert!(!l.is_upper_triangular());
        assert!(l.has_nonzero_diagonal());
        assert!(l.validate_triangular(Triangle::Lower).is_ok());
        assert!(l.validate_triangular(Triangle::Upper).is_err());
        let u = l.transpose();
        assert!(u.is_upper_triangular());
        assert!(u.validate_triangular(Triangle::Upper).is_ok());
    }

    #[test]
    fn transpose_round_trip() {
        let l = sample_lower();
        assert_eq!(l.transpose().transpose(), l);
    }

    #[test]
    fn transpose_values_move() {
        let l = sample_lower();
        let t = l.transpose();
        assert_eq!(t.get(0, 1), Some(1.0));
        assert_eq!(t.get(1, 0), None);
        assert_eq!(t.get(2, 5), Some(1.0));
    }

    #[test]
    fn lower_triangle_extraction() {
        let l = sample_lower();
        let full = {
            // Symmetrize: A = L + L^T - diag.
            let mut coo = CooMatrix::new(6, 6);
            for (r, c, v) in l.iter() {
                coo.push(r, c, v).unwrap();
                if r != c {
                    coo.push(c, r, v).unwrap();
                }
            }
            coo.to_csr()
        };
        assert_eq!(full.lower_triangle().unwrap(), l);
    }

    #[test]
    fn symmetric_permute_identity_is_noop() {
        let l = sample_lower();
        let p = Permutation::identity(6);
        assert_eq!(l.symmetric_permute(&p).unwrap(), l);
    }

    #[test]
    fn symmetric_permute_matches_dense() {
        let l = sample_lower();
        let p = Permutation::from_old_of_new(vec![0, 2, 1, 3, 5, 4]).unwrap();
        let b = l.symmetric_permute(&p).unwrap();
        let ld = l.to_dense();
        let bd = b.to_dense();
        let o = p.old_of_new();
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(bd[i][j], ld[o[i]][o[j]]);
            }
        }
    }

    #[test]
    fn solve_flops_formula() {
        let l = sample_lower();
        assert_eq!(l.solve_flops(), 2 * l.nnz() - 6);
    }

    #[test]
    fn identity_matrix() {
        let i = CsrMatrix::identity(4);
        assert!(i.has_nonzero_diagonal());
        assert_eq!(i.nnz(), 4);
        assert!(i.is_lower_triangular() && i.is_upper_triangular());
    }
}
