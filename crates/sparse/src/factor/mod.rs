//! Incomplete factorizations.
//!
//! Currently zero-fill incomplete Cholesky ([`ichol::ichol0`]), the
//! factorization behind the iChol data set (§6.2.3) and the preconditioner of
//! the PCG application example.

pub mod ichol;

pub use ichol::{ichol0, IcholOptions};
