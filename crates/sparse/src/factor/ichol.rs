//! Zero-fill incomplete Cholesky factorization IC(0).
//!
//! Computes a lower-triangular `L` with the sparsity pattern of the lower
//! triangle of the SPD input `A` such that `L·Lᵀ ≈ A`. This is the paper's
//! iChol pre-processing (§6.2.3, there produced with Eigen's
//! `IncompleteCholesky`) and the classic source of SpTRSV workloads: every
//! preconditioner application is one forward and one backward solve.
//!
//! Breakdown (non-positive pivot) is handled with a Manteuffel-style diagonal
//! shift: the factorization restarts on `A + αI` with geometrically growing
//! `α` until it succeeds.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::Result;

/// Options for [`ichol0`].
#[derive(Debug, Clone)]
pub struct IcholOptions {
    /// Initial diagonal shift applied after the first breakdown (relative to
    /// the mean diagonal magnitude).
    pub initial_shift: f64,
    /// Maximum number of shift-and-retry attempts before giving up.
    pub max_retries: u32,
}

impl Default for IcholOptions {
    fn default() -> Self {
        IcholOptions { initial_shift: 1e-3, max_retries: 20 }
    }
}

/// Computes the IC(0) factor of a symmetric positive-definite matrix.
///
/// Only the lower triangle of `a` is read; the strictly upper part is ignored
/// (callers may pass either a full symmetric matrix or just its lower
/// triangle). Returns a lower-triangular `L` with positive diagonal.
pub fn ichol0(a: &CsrMatrix, options: &IcholOptions) -> Result<CsrMatrix> {
    if a.n_rows() != a.n_cols() {
        return Err(SparseError::NotSquare { n_rows: a.n_rows(), n_cols: a.n_cols() });
    }
    let lower = a.lower_triangle()?;
    if !lower.has_nonzero_diagonal() {
        return Err(SparseError::SingularDiagonal {
            row: (0..lower.n_rows())
                .find(|&r| !lower.get(r, r).is_some_and(|v| v != 0.0))
                .unwrap_or(0),
        });
    }
    let mean_diag = lower.diagonal().iter().map(|d| d.abs()).sum::<f64>() / lower.n_rows() as f64;
    let mut shift = 0.0;
    let mut next_shift = options.initial_shift * mean_diag;
    for _ in 0..=options.max_retries {
        match try_factor(&lower, shift) {
            Ok(l) => return Ok(l),
            Err(SparseError::FactorizationBreakdown { .. }) => {
                shift = next_shift;
                next_shift *= 2.0;
            }
            Err(e) => return Err(e),
        }
    }
    Err(SparseError::FactorizationBreakdown { row: 0, pivot: shift })
}

/// One factorization attempt on `lower + shift·I`.
fn try_factor(lower: &CsrMatrix, shift: f64) -> Result<CsrMatrix> {
    let n = lower.n_rows();
    let row_ptr = lower.row_ptr().to_vec();
    let col_idx = lower.col_idx().to_vec();
    let mut values = lower.values().to_vec();
    if shift != 0.0 {
        for r in 0..n {
            // Diagonal is the last entry of each lower-triangular row.
            let end = row_ptr[r + 1] - 1;
            debug_assert_eq!(col_idx[end], r);
            values[end] += shift;
        }
    }

    // Up-looking IC(0): for each row i and each stored column k < i,
    //   L[i][k] = (A[i][k] - Σ_{j<k, j in both rows} L[i][j]·L[k][j]) / L[k][k],
    // then L[i][i] = sqrt(A[i][i] - Σ_j L[i][j]²).
    // The sparse dot products use a two-pointer merge over the (sorted) rows.
    for i in 0..n {
        let (start_i, end_i) = (row_ptr[i], row_ptr[i + 1]);
        debug_assert!(end_i > start_i && col_idx[end_i - 1] == i, "row {i} lacks a diagonal");
        for idx in start_i..end_i - 1 {
            let k = col_idx[idx];
            // Sparse dot of row i and row k over columns < k.
            let mut sum = 0.0;
            let mut pi = start_i;
            let mut pk = row_ptr[k];
            let end_k = row_ptr[k + 1] - 1; // exclude L[k][k]
            while pi < idx && pk < end_k {
                match col_idx[pi].cmp(&col_idx[pk]) {
                    std::cmp::Ordering::Less => pi += 1,
                    std::cmp::Ordering::Greater => pk += 1,
                    std::cmp::Ordering::Equal => {
                        sum += values[pi] * values[pk];
                        pi += 1;
                        pk += 1;
                    }
                }
            }
            let lkk = values[row_ptr[k + 1] - 1];
            values[idx] = (values[idx] - sum) / lkk;
        }
        let mut diag = values[end_i - 1];
        for v in &values[start_i..end_i - 1] {
            diag -= v * v;
        }
        if diag <= 0.0 || !diag.is_finite() {
            return Err(SparseError::FactorizationBreakdown { row: i, pivot: diag });
        }
        values[end_i - 1] = diag.sqrt();
    }
    Ok(CsrMatrix::from_raw_unchecked(n, n, row_ptr, col_idx, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid::{grid2d_laplacian, Stencil2D};
    use crate::linalg::{norm2, spmv};

    /// Multiplies L·Lᵀ densely (tests only).
    fn llt_dense(l: &CsrMatrix) -> Vec<Vec<f64>> {
        let n = l.n_rows();
        let ld = l.to_dense();
        let mut out = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                out[i][j] = ld[i].iter().zip(&ld[j]).map(|(a, b)| a * b).sum();
            }
        }
        out
    }

    #[test]
    fn exact_on_full_pattern() {
        // On a dense-pattern SPD matrix IC(0) == complete Cholesky.
        let mut coo = crate::CooMatrix::new(3, 3);
        let a = [[4.0, 2.0, 2.0], [2.0, 5.0, 3.0], [2.0, 3.0, 6.0]];
        for (i, row) in a.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                coo.push(i, j, v).unwrap();
            }
        }
        let l = ichol0(&coo.to_csr(), &IcholOptions::default()).unwrap();
        let llt = llt_dense(&l);
        for i in 0..3 {
            for j in 0..3 {
                assert!((llt[i][j] - a[i][j]).abs() < 1e-12, "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn grid_laplacian_factors_without_shift() {
        let a = grid2d_laplacian(10, 10, Stencil2D::FivePoint, 0.5);
        let l = ichol0(&a, &IcholOptions::default()).unwrap();
        assert!(l.is_lower_triangular());
        assert!(l.diagonal().iter().all(|&d| d > 0.0));
        // Defining property of IC(0): (L·Lᵀ)[i][j] == A[i][j] exactly on the
        // stored lower-triangular pattern (only fill outside it is dropped).
        let lt = l.transpose();
        for (i, j, aij) in a.lower_triangle().unwrap().iter() {
            // (L·Lᵀ)[i][j] = <row i of L, row j of L> = <row i of L, col j of Lᵀ>.
            let (ci, vi) = l.row(i);
            let (cj, vj) = l.row(j);
            let mut s = 0.0;
            let (mut pi, mut pj) = (0, 0);
            while pi < ci.len() && pj < cj.len() {
                match ci[pi].cmp(&cj[pj]) {
                    std::cmp::Ordering::Less => pi += 1,
                    std::cmp::Ordering::Greater => pj += 1,
                    std::cmp::Ordering::Equal => {
                        s += vi[pi] * vj[pj];
                        pi += 1;
                        pj += 1;
                    }
                }
            }
            assert!((s - aij).abs() < 1e-10, "pattern mismatch at ({i},{j}): {s} vs {aij}");
        }
        // Sanity: the preconditioner action M·x stays within a factor ~2 of
        // A·x in norm for a generic (non-null-space) vector.
        let n = a.n_rows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 37 % 17) as f64) - 8.0).collect();
        let mut ax = vec![0.0; n];
        spmv(&a, &x, &mut ax);
        let mut ltx = vec![0.0; n];
        spmv(&lt, &x, &mut ltx);
        let mut mx = vec![0.0; n];
        spmv(&l, &ltx, &mut mx);
        let ratio = norm2(&mx) / norm2(&ax);
        assert!((0.5..2.0).contains(&ratio), "||Mx||/||Ax|| = {ratio}");
    }

    #[test]
    fn breakdown_recovers_with_shift() {
        // An indefinite-looking matrix that forces at least one retry.
        let mut coo = crate::CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 0, 10.0).unwrap();
        coo.push(0, 1, 10.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        let l = ichol0(&coo.to_csr(), &IcholOptions::default()).unwrap();
        assert!(l.diagonal().iter().all(|&d| d > 0.0));
    }

    #[test]
    fn rejects_non_square_and_zero_diagonal() {
        let mut coo = crate::CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0).unwrap();
        assert!(ichol0(&coo.to_csr(), &IcholOptions::default()).is_err());
        let mut coo = crate::CooMatrix::new(2, 2);
        coo.push(1, 0, 1.0).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        assert!(matches!(
            ichol0(&coo.to_csr(), &IcholOptions::default()),
            Err(SparseError::SingularDiagonal { .. })
        ));
    }
}
