//! Sparse-matrix substrate for the `sptrsv` workspace.
//!
//! This crate provides everything the schedulers and executors need from the
//! linear-algebra side, built from scratch:
//!
//! * [`coo`] — triplet (coordinate) assembly format,
//! * [`csr`] — compressed sparse row storage, the solver's working format,
//! * [`perm`] — permutations and symmetric matrix permutation,
//! * [`io`] — Matrix Market reading/writing,
//! * [`linalg`] — dense-vector kernels (dot, axpy, norms) and SpMV,
//! * [`gen`] — synthetic matrix generators (grid stencils, Erdős–Rényi,
//!   narrow-bandwidth) matching §6.2 of the paper,
//! * [`ordering`] — fill-reducing orderings (RCM, minimum degree, nested
//!   dissection) standing in for METIS/AMD,
//! * [`factor`] — zero-fill incomplete Cholesky IC(0).

pub mod coo;
pub mod csr;
pub mod error;
pub mod factor;
pub mod gen;
pub mod io;
pub mod linalg;
pub mod ordering;
pub mod perm;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use error::SparseError;
pub use perm::Permutation;

/// Result alias used throughout the sparse substrate.
pub type Result<T> = std::result::Result<T, SparseError>;
