//! Permutations of `0..n` and their action on vectors and matrices.
//!
//! The reordering step of the paper (§5) and the METIS-style pre-processing
//! (§6.2.2) are both symmetric permutations; this module fixes one convention
//! so they cannot be composed the wrong way round:
//!
//! * a [`Permutation`] stores `old_of_new`: the old index that lands at each
//!   new position, i.e. new index `i` holds what was `old_of_new[i]`;
//! * applying it to a vector *gathers*: `y[i] = x[old_of_new[i]]`.

use crate::error::SparseError;
use crate::Result;

/// A bijection on `0..n`, stored as the `old_of_new` mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    old_of_new: Vec<usize>,
    new_of_old: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        let v: Vec<usize> = (0..n).collect();
        Permutation { old_of_new: v.clone(), new_of_old: v }
    }

    /// Builds a permutation from the `old_of_new` mapping, validating that it
    /// is a bijection on `0..n`.
    pub fn from_old_of_new(old_of_new: Vec<usize>) -> Result<Self> {
        let n = old_of_new.len();
        let mut new_of_old = vec![usize::MAX; n];
        for (new, &old) in old_of_new.iter().enumerate() {
            if old >= n {
                return Err(SparseError::InvalidPermutation(format!(
                    "index {old} out of range for n={n}"
                )));
            }
            if new_of_old[old] != usize::MAX {
                return Err(SparseError::InvalidPermutation(format!("index {old} repeated")));
            }
            new_of_old[old] = new;
        }
        Ok(Permutation { old_of_new, new_of_old })
    }

    /// Builds a permutation from the `new_of_old` mapping (where each old
    /// index should go), validating bijectivity.
    pub fn from_new_of_old(new_of_old: Vec<usize>) -> Result<Self> {
        let p = Permutation::from_old_of_new(new_of_old)?;
        Ok(p.inverse())
    }

    /// Domain size `n`.
    pub fn len(&self) -> usize {
        self.old_of_new.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.old_of_new.is_empty()
    }

    /// `old_of_new[i]` — the old index stored at new position `i`.
    pub fn old_of_new(&self) -> &[usize] {
        &self.old_of_new
    }

    /// `new_of_old[i]` — the new position of old index `i`.
    pub fn new_of_old(&self) -> &[usize] {
        &self.new_of_old
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation { old_of_new: self.new_of_old.clone(), new_of_old: self.old_of_new.clone() }
    }

    /// Composes two permutations: applying `self.compose(other)` is the same
    /// as first applying `other`, then `self` (both in the gather sense).
    pub fn compose(&self, other: &Permutation) -> Permutation {
        debug_assert_eq!(self.len(), other.len());
        let old_of_new: Vec<usize> =
            self.old_of_new.iter().map(|&mid| other.old_of_new[mid]).collect();
        Permutation::from_old_of_new(old_of_new).expect("composition of bijections is a bijection")
    }

    /// Gathers a vector: `out[i] = x[old_of_new[i]]`.
    pub fn apply_vec<T: Copy>(&self, x: &[T]) -> Vec<T> {
        debug_assert_eq!(x.len(), self.len());
        self.old_of_new.iter().map(|&o| x[o]).collect()
    }

    /// Scatters a vector back: `out[old_of_new[i]] = x[i]`, the inverse of
    /// [`Permutation::apply_vec`]. Used to map a solution of a permuted system
    /// back to the original unknown ordering.
    pub fn apply_inverse_vec<T: Copy + Default>(&self, x: &[T]) -> Vec<T> {
        debug_assert_eq!(x.len(), self.len());
        let mut out = vec![T::default(); x.len()];
        for (i, &o) in self.old_of_new.iter().enumerate() {
            out[o] = x[i];
        }
        out
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.old_of_new.iter().enumerate().all(|(i, &o)| i == o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bijectivity_enforced() {
        assert!(Permutation::from_old_of_new(vec![0, 0, 1]).is_err());
        assert!(Permutation::from_old_of_new(vec![0, 3]).is_err());
        assert!(Permutation::from_old_of_new(vec![2, 0, 1]).is_ok());
    }

    #[test]
    fn inverse_round_trips() {
        let p = Permutation::from_old_of_new(vec![2, 0, 3, 1]).unwrap();
        let x = [10.0, 20.0, 30.0, 40.0];
        let y = p.apply_vec(&x);
        assert_eq!(y, vec![30.0, 10.0, 40.0, 20.0]);
        assert_eq!(p.apply_inverse_vec(&y), x.to_vec());
        assert!(p.compose(&p.inverse()).is_identity());
        assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn new_of_old_consistency() {
        let p = Permutation::from_old_of_new(vec![2, 0, 3, 1]).unwrap();
        for new in 0..4 {
            assert_eq!(p.new_of_old()[p.old_of_new()[new]], new);
        }
        let q = Permutation::from_new_of_old(p.new_of_old().to_vec()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn composition_order() {
        let p = Permutation::from_old_of_new(vec![1, 2, 0]).unwrap();
        let q = Permutation::from_old_of_new(vec![2, 1, 0]).unwrap();
        let x = [1.0, 2.0, 3.0];
        let via_compose = p.compose(&q).apply_vec(&x);
        let stepwise = p.apply_vec(&q.apply_vec(&x));
        // compose(q) first applies q, then self.
        assert_eq!(via_compose, stepwise);
    }
}
