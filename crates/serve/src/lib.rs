//! Batching solve-as-a-service front-end over a [`SolvePlan`].
//!
//! The execution layers beneath this crate already amortize everything a
//! *single* caller pays per solve — schedules compile once, workers
//! persist, steady-state solves are allocation-free. What nothing
//! amortizes is the cost of *many* callers: each concurrent client
//! driving its own closed-loop `solve_into` pays one dispatch, one core
//! lease and one full traversal of the operand per right-hand side. A
//! [`SolveServer`] closes that gap the way SpMP sparsifies
//! synchronization and HDagg aggregates wavefronts — by amortizing the
//! per-unit overhead across units:
//!
//! * **Submission queue per plan** — clients [`SolveServer::submit`] one
//!   right-hand side and get a [`SolveHandle`] back immediately;
//! * **Coalescing batcher** — a dedicated thread fuses queued requests
//!   into one multi-RHS solve through the plan's borrowed-RHS entry point
//!   ([`SolvePlan::solve_batch_in_place`]): one dispatch, one lease and
//!   one matrix traversal serve up to `batch=N` requests. A
//!   `batch_wait_us` linger bound dispatches a partial batch rather than
//!   starve a lone request;
//! * **Admission control** — when the queue is full (depth implies the
//!   latency budget is blown) a submit either blocks
//!   ([`Admission::Block`]) or is shed with its buffer returned
//!   ([`Admission::Shed`]), so goodput degrades predictably instead of
//!   latency collapsing;
//! * **Timing breakdown** — every response carries queued / solve /
//!   total durations and the batch width it rode in
//!   ([`RequestTiming`]).
//!
//! Batching changes *grouping*, never per-column arithmetic: a fused
//! request goes through the identical per-row operation sequence as a
//! standalone solve, so results are **bit-identical** to solving each
//! request alone (under the default `fastmath=off` policy; `fastmath=on`
//! keeps its documented `1e-12` tolerance). The warm serving path —
//! submit, batch, solve, wait — performs **no heap allocation**: slots
//! recycle through a pool, the queue and batch buffers are bounded and
//! pre-sized, and solutions are scattered back into each request's own
//! buffer.
//!
//! ```
//! use sptrsv_exec::PlanBuilder;
//! use sptrsv_serve::SolveServer;
//! use sptrsv_sparse::gen::grid::{grid2d_laplacian, Stencil2D};
//!
//! let l = grid2d_laplacian(16, 16, Stencil2D::FivePoint, 0.5).lower_triangle().unwrap();
//! // `batch=` / `batch_wait_us=` are execution-policy keys like any other.
//! let plan = PlanBuilder::new(&l).scheduler("growlocal:batch=8,batch_wait_us=100").build()?;
//! let server = SolveServer::start(plan);
//! let handle = server.submit(vec![1.0; l.n_rows()]).unwrap();
//! let response = handle.wait();
//! assert!(sptrsv_sparse::linalg::relative_residual(&l, &response.x, &vec![1.0; l.n_rows()]) < 1e-12);
//! server.shutdown();
//! # Ok::<(), sptrsv_exec::PlanError>(())
//! ```

#![warn(missing_docs)]

use sptrsv_exec::{BatchWorkspace, SolvePlan};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Batch width applied when neither [`ServeBuilder::max_batch`] nor the
/// plan's `batch=` policy key is given.
pub const DEFAULT_MAX_BATCH: usize = 8;

/// Linger bound applied when neither [`ServeBuilder::batch_wait`] nor the
/// plan's `batch_wait_us=` policy key is given.
pub const DEFAULT_BATCH_WAIT: Duration = Duration::from_micros(100);

/// What a full queue does to the next submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Admission {
    /// Block the submitter until the batcher frees queue space (closed-loop
    /// clients; no request is ever lost).
    #[default]
    Block,
    /// Reject immediately with [`SubmitError::QueueFull`], handing the
    /// buffer back (open-loop clients; sheds load instead of letting the
    /// queue — and hence every queued request's latency — grow without
    /// bound).
    Shed,
}

/// Per-request timing breakdown, reported with every [`SolveResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTiming {
    /// Submission to batch formation: time spent waiting in the queue
    /// (including the linger the batcher spent waiting for company).
    pub queued: Duration,
    /// Duration of the fused multi-RHS solve the request rode in.
    pub solve: Duration,
    /// Submission to result availability (`queued` + gather/scatter +
    /// `solve`).
    pub total: Duration,
    /// How many requests were fused into the request's batch (1 ..= the
    /// server's `max_batch`).
    pub batch_width: usize,
}

/// A completed request: the solution and its timing breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResponse {
    /// The solution, in the user's numbering. The vector is the same
    /// buffer the request was submitted with (solved in place), so a
    /// closed-loop client can recycle it for its next submission.
    pub x: Vec<f64>,
    /// The request's queued / solve / total / batch-width breakdown.
    pub timing: RequestTiming,
}

/// Why a submission was not accepted. Every variant hands the right-hand
/// side buffer back so the caller can retry or recycle it.
pub enum SubmitError {
    /// The queue is at depth and the server sheds ([`Admission::Shed`]).
    QueueFull {
        /// The rejected right-hand side, returned to the caller.
        b: Vec<f64>,
    },
    /// The server is shutting down and accepts no new work.
    ShuttingDown {
        /// The rejected right-hand side, returned to the caller.
        b: Vec<f64>,
    },
    /// The right-hand side's length does not match the plan's dimension.
    WrongSize {
        /// The rejected right-hand side, returned to the caller.
        b: Vec<f64>,
        /// The plan's dimension.
        expected: usize,
    },
}

impl fmt::Debug for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { b } => write!(f, "QueueFull {{ b: [f64; {}] }}", b.len()),
            SubmitError::ShuttingDown { b } => {
                write!(f, "ShuttingDown {{ b: [f64; {}] }}", b.len())
            }
            SubmitError::WrongSize { b, expected } => {
                write!(f, "WrongSize {{ b: [f64; {}], expected: {expected} }}", b.len())
            }
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { .. } => write!(f, "submission shed: queue at depth"),
            SubmitError::ShuttingDown { .. } => write!(f, "submission rejected: shutting down"),
            SubmitError::WrongSize { b, expected } => {
                write!(f, "right-hand side has {} entries, the plan solves {expected}", b.len())
            }
        }
    }
}

impl std::error::Error for SubmitError {}

impl SubmitError {
    /// The rejected right-hand side, recovered from any variant.
    pub fn into_buffer(self) -> Vec<f64> {
        match self {
            SubmitError::QueueFull { b }
            | SubmitError::ShuttingDown { b }
            | SubmitError::WrongSize { b, .. } => b,
        }
    }
}

/// Lifecycle of one request, guarded by its slot's mutex.
enum SlotState {
    /// In the pool, awaiting reuse.
    Idle,
    /// Queued: the right-hand side awaits the batcher.
    Pending { b: Vec<f64> },
    /// Drained from the queue into a batch; the solve is running.
    InFlight,
    /// Solved: the solution awaits [`SolveHandle::wait`].
    Done { x: Vec<f64>, timing: RequestTiming },
}

/// One request's rendezvous cell: the submitter parks the right-hand side
/// here, the batcher swaps in the solution, the handle takes it out.
struct Slot {
    state: Mutex<SlotState>,
    done: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot { state: Mutex::new(SlotState::Idle), done: Condvar::new() })
    }
}

/// The queue proper, guarded by one mutex: slots in submission order plus
/// the shutdown latch.
struct QueueState {
    /// Queued requests with their submission instants (kept beside the
    /// slot so the batcher's linger math never locks slot states).
    slots: VecDeque<(Arc<Slot>, Instant)>,
    shutting_down: bool,
}

/// Monotonic serving counters (relaxed atomics; exact because every
/// transition increments exactly one).
struct Counters {
    submitted: AtomicUsize,
    completed: AtomicUsize,
    shed: AtomicUsize,
    batches: AtomicUsize,
    /// `widths[k]` counts batches that fused exactly `k` requests
    /// (index 0 unused).
    widths: Vec<AtomicUsize>,
}

/// State shared by clients, the batcher thread and handles.
struct Shared {
    queue: Mutex<QueueState>,
    /// Signals the batcher: work arrived or shutdown began.
    work: Condvar,
    /// Signals blocked submitters: queue space freed or shutdown began.
    space: Condvar,
    /// Recycled slots; bounded so a warm pool never reallocates.
    pool: Mutex<Vec<Arc<Slot>>>,
    pool_cap: usize,
    counters: Counters,
    plan: Arc<SolvePlan>,
    max_batch: usize,
    batch_wait: Duration,
    queue_depth: usize,
    admission: Admission,
}

/// A snapshot of a server's counters ([`SolveServer::stats`]; also
/// returned by [`SolveServer::shutdown`] after the queue drained).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests accepted into the queue.
    pub submitted: usize,
    /// Requests solved and completed.
    pub completed: usize,
    /// Requests rejected by [`Admission::Shed`] backpressure.
    pub shed: usize,
    /// Fused multi-RHS solves dispatched.
    pub batches: usize,
    /// `widths[k]` = number of batches that fused exactly `k` requests
    /// (`widths[0]` unused; length `max_batch + 1`).
    pub widths: Vec<usize>,
}

impl ServerStats {
    /// Mean achieved batch width (`completed / batches`), 0.0 before any
    /// batch dispatched.
    pub fn mean_width(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }
}

/// Configures and starts a [`SolveServer`]; see the module docs.
///
/// Defaults come from the plan's execution policy (`batch=` /
/// `batch_wait_us=` spec keys or the typed `PlanBuilder` knobs), then the
/// crate defaults; the builder's own setters win over both.
pub struct ServeBuilder {
    plan: Arc<SolvePlan>,
    max_batch: Option<usize>,
    batch_wait: Option<Duration>,
    queue_depth: Option<usize>,
    admission: Admission,
}

impl ServeBuilder {
    /// A builder serving `plan` with the policy-resolved defaults: batch
    /// width from the plan's `batch=` key (else 8), linger from
    /// `batch_wait_us=` (else 100 µs), queue depth `4 × batch width`,
    /// blocking admission.
    pub fn new(plan: SolvePlan) -> ServeBuilder {
        ServeBuilder::from_arc(Arc::new(plan))
    }

    /// A builder over an already-shared plan. The server holds the `Arc`
    /// directly, so a plan pulled out of a warm-start
    /// [`PlanCache`](sptrsv_exec::PlanCache) — or one other components
    /// still reference — is served without cloning or rebuilding any of
    /// its compiled artifacts.
    pub fn from_arc(plan: Arc<SolvePlan>) -> ServeBuilder {
        ServeBuilder {
            plan,
            max_batch: None,
            batch_wait: None,
            queue_depth: None,
            admission: Admission::default(),
        }
    }

    /// Maximum requests fused into one multi-RHS solve. Overrides the
    /// plan's `batch=` policy key.
    pub fn max_batch(mut self, max_batch: usize) -> ServeBuilder {
        assert!(max_batch > 0, "a batch fuses at least one request");
        self.max_batch = Some(max_batch);
        self
    }

    /// How long the batcher holds the oldest queued request while waiting
    /// for the batch to fill (zero = dispatch immediately). Overrides the
    /// plan's `batch_wait_us=` policy key.
    pub fn batch_wait(mut self, batch_wait: Duration) -> ServeBuilder {
        self.batch_wait = Some(batch_wait);
        self
    }

    /// Queue depth at which admission control engages.
    pub fn queue_depth(mut self, queue_depth: usize) -> ServeBuilder {
        assert!(queue_depth > 0, "a server needs room for at least one request");
        self.queue_depth = Some(queue_depth);
        self
    }

    /// Full-queue behavior: block the submitter or shed the request.
    pub fn admission(mut self, admission: Admission) -> ServeBuilder {
        self.admission = admission;
        self
    }

    /// Sizes the queue depth from a latency budget: with batches of up to
    /// `max_batch` requests taking about `est_batch_solve` each, a request
    /// admitted behind `d` queued ones waits about
    /// `ceil(d / max_batch) × est_batch_solve` — the depth is the largest
    /// `d` that keeps the estimate within `budget` (at least 1). Requests
    /// beyond that depth would blow the budget, so they block or shed at
    /// admission instead of queueing doomed work.
    pub fn latency_budget(self, budget: Duration, est_batch_solve: Duration) -> ServeBuilder {
        let width = self.effective_max_batch();
        let batches_in_budget = if est_batch_solve.is_zero() {
            usize::MAX
        } else {
            (budget.as_nanos() / est_batch_solve.as_nanos().max(1)) as usize
        };
        let depth = batches_in_budget.saturating_mul(width).max(1);
        self.queue_depth(depth)
    }

    fn effective_max_batch(&self) -> usize {
        self.max_batch.or(self.plan.exec_policy().batch).unwrap_or(DEFAULT_MAX_BATCH)
    }

    /// Starts the batcher thread and returns the running server.
    pub fn start(self) -> SolveServer {
        let max_batch = self.effective_max_batch();
        let batch_wait = self.batch_wait.unwrap_or_else(|| {
            self.plan
                .exec_policy()
                .batch_wait_us
                .map(Duration::from_micros)
                .unwrap_or(DEFAULT_BATCH_WAIT)
        });
        let queue_depth = self.queue_depth.unwrap_or(4 * max_batch);
        // Warm slots cycle queue -> batch -> pool: depth + one full batch
        // in flight bounds the live population, headroom absorbs handles
        // held briefly past completion.
        let pool_cap = queue_depth + 2 * max_batch;
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                slots: VecDeque::with_capacity(queue_depth),
                shutting_down: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            pool: Mutex::new(Vec::with_capacity(pool_cap)),
            pool_cap,
            counters: Counters {
                submitted: AtomicUsize::new(0),
                completed: AtomicUsize::new(0),
                shed: AtomicUsize::new(0),
                batches: AtomicUsize::new(0),
                widths: (0..=max_batch).map(|_| AtomicUsize::new(0)).collect(),
            },
            plan: self.plan,
            max_batch,
            batch_wait,
            queue_depth,
            admission: self.admission,
        });
        let batcher_shared = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("sptrsv-serve-batcher".to_string())
            .spawn(move || batcher_loop(&batcher_shared))
            .expect("spawning the batcher thread");
        SolveServer { shared, batcher: Some(batcher) }
    }
}

/// A running batching front-end over one [`SolvePlan`]; see the module
/// docs. One server per plan — start several to serve several plans from
/// the same shared `SolverRuntime`.
pub struct SolveServer {
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<()>>,
}

impl SolveServer {
    /// Starts a server over `plan` with policy-resolved defaults
    /// (equivalent to `SolveServer::builder(plan).start()`).
    pub fn start(plan: SolvePlan) -> SolveServer {
        ServeBuilder::new(plan).start()
    }

    /// A [`ServeBuilder`] over `plan` for non-default batching, depth and
    /// admission settings.
    pub fn builder(plan: SolvePlan) -> ServeBuilder {
        ServeBuilder::new(plan)
    }

    /// The plan this server solves with (e.g. to compute reference
    /// solutions or inspect the resolved policy).
    pub fn plan(&self) -> &SolvePlan {
        &self.shared.plan
    }

    /// The batch width in effect.
    pub fn max_batch(&self) -> usize {
        self.shared.max_batch
    }

    /// The linger bound in effect.
    pub fn batch_wait(&self) -> Duration {
        self.shared.batch_wait
    }

    /// The queue depth at which admission control engages.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue_depth
    }

    /// Submits one right-hand side. On success the buffer is owned by the
    /// server until the returned [`SolveHandle`] yields it back (solved in
    /// place) — on rejection every error variant returns it immediately.
    ///
    /// With [`Admission::Block`] a full queue blocks the caller until the
    /// batcher frees space; with [`Admission::Shed`] it returns
    /// [`SubmitError::QueueFull`]. Steady-state submissions are
    /// allocation-free: slots recycle through the server's pool.
    ///
    /// ```
    /// use sptrsv_exec::PlanBuilder;
    /// use sptrsv_serve::{SolveServer, SubmitError};
    /// use sptrsv_sparse::gen::grid::{grid2d_laplacian, Stencil2D};
    ///
    /// let l = grid2d_laplacian(12, 12, Stencil2D::FivePoint, 0.5).lower_triangle().unwrap();
    /// let n = l.n_rows();
    /// let server = SolveServer::start(PlanBuilder::new(&l).scheduler("growlocal").build()?);
    ///
    /// // A wrong-sized right-hand side is rejected with the buffer returned.
    /// match server.submit(vec![1.0; n + 1]) {
    ///     Err(SubmitError::WrongSize { b, expected }) => {
    ///         assert_eq!((b.len(), expected), (n + 1, n));
    ///     }
    ///     other => panic!("expected WrongSize, got {other:?}"),
    /// }
    ///
    /// // A well-formed submission yields a handle; `wait` returns the
    /// // solution in the same buffer, solved in place.
    /// let response = server.submit(vec![1.0; n]).unwrap().wait();
    /// assert!(sptrsv_sparse::linalg::relative_residual(&l, &response.x, &vec![1.0; n]) < 1e-12);
    /// assert!(response.timing.batch_width >= 1);
    /// server.shutdown();
    /// # Ok::<(), sptrsv_exec::PlanError>(())
    /// ```
    pub fn submit(&self, b: Vec<f64>) -> Result<SolveHandle, SubmitError> {
        let shared = &self.shared;
        let n = shared.plan.internal_matrix().n_rows();
        if b.len() != n {
            return Err(SubmitError::WrongSize { b, expected: n });
        }
        let mut queue = shared.queue.lock().unwrap();
        if queue.shutting_down {
            return Err(SubmitError::ShuttingDown { b });
        }
        while queue.slots.len() >= shared.queue_depth {
            match shared.admission {
                Admission::Shed => {
                    shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::QueueFull { b });
                }
                Admission::Block => {
                    queue = shared.space.wait(queue).unwrap();
                    if queue.shutting_down {
                        return Err(SubmitError::ShuttingDown { b });
                    }
                }
            }
        }
        let slot = shared.pool.lock().unwrap().pop().unwrap_or_else(Slot::new);
        *slot.state.lock().unwrap() = SlotState::Pending { b };
        queue.slots.push_back((Arc::clone(&slot), Instant::now()));
        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        drop(queue);
        shared.work.notify_one();
        Ok(SolveHandle { slot, shared: Arc::clone(shared) })
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        ServerStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            widths: c.widths.iter().map(|w| w.load(Ordering::Relaxed)).collect(),
        }
    }

    /// Stops accepting submissions, drains every queued request through
    /// the batcher (outstanding [`SolveHandle`]s stay redeemable), joins
    /// the batcher thread and returns the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.begin_shutdown();
        if let Some(batcher) = self.batcher.take() {
            batcher.join().expect("the batcher thread never panics");
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        let mut queue = self.shared.queue.lock().unwrap();
        queue.shutting_down = true;
        drop(queue);
        self.shared.work.notify_all();
        self.shared.space.notify_all();
    }
}

impl Drop for SolveServer {
    fn drop(&mut self) {
        if let Some(batcher) = self.batcher.take() {
            self.begin_shutdown();
            batcher.join().expect("the batcher thread never panics");
        }
    }
}

impl fmt::Debug for SolveServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolveServer")
            .field("max_batch", &self.shared.max_batch)
            .field("batch_wait", &self.shared.batch_wait)
            .field("queue_depth", &self.shared.queue_depth)
            .field("admission", &self.shared.admission)
            .finish()
    }
}

/// Redeems one submitted request; returned by [`SolveServer::submit`].
///
/// Dropping a handle without calling [`SolveHandle::wait`] abandons the
/// result (the solve still happens; the slot is simply not recycled).
pub struct SolveHandle {
    slot: Arc<Slot>,
    shared: Arc<Shared>,
}

impl SolveHandle {
    /// Blocks until the request's batch has solved and returns the
    /// solution (in the buffer the request was submitted with) plus its
    /// timing breakdown.
    pub fn wait(self) -> SolveResponse {
        let mut state = self.slot.state.lock().unwrap();
        loop {
            match std::mem::replace(&mut *state, SlotState::Idle) {
                SlotState::Done { x, timing } => {
                    drop(state);
                    // Recycle the slot; a saturated pool lets it drop.
                    let mut pool = self.shared.pool.lock().unwrap();
                    if pool.len() < self.shared.pool_cap {
                        pool.push(Arc::clone(&self.slot));
                    }
                    return SolveResponse { x, timing };
                }
                other => {
                    *state = other;
                    state = self.slot.done.wait(state).unwrap();
                }
            }
        }
    }

    /// Whether the result is ready (i.e. [`SolveHandle::wait`] would
    /// return without blocking).
    pub fn is_ready(&self) -> bool {
        matches!(*self.slot.state.lock().unwrap(), SlotState::Done { .. })
    }
}

impl fmt::Debug for SolveHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolveHandle").field("ready", &self.is_ready()).finish()
    }
}

/// The batcher thread: linger, drain, fuse, solve, complete — allocation-
/// free once the reused buffers below have seen `max_batch`.
fn batcher_loop(shared: &Shared) {
    let mut batch: Vec<(Arc<Slot>, Instant)> = Vec::with_capacity(shared.max_batch);
    let mut bufs: Vec<Vec<f64>> = Vec::with_capacity(shared.max_batch);
    let mut workspace: BatchWorkspace = shared.plan.batch_workspace(shared.max_batch);
    loop {
        let mut queue = shared.queue.lock().unwrap();
        loop {
            if queue.slots.is_empty() {
                if queue.shutting_down {
                    return;
                }
                queue = shared.work.wait(queue).unwrap();
                continue;
            }
            // Dispatch when the batch is full, shutdown is draining, or
            // the oldest request's linger expired; otherwise wait out the
            // remaining linger (re-checking on every wake).
            if queue.slots.len() >= shared.max_batch || queue.shutting_down {
                break;
            }
            let waited = queue.slots.front().expect("non-empty").1.elapsed();
            if waited >= shared.batch_wait {
                break;
            }
            queue = shared.work.wait_timeout(queue, shared.batch_wait - waited).unwrap().0;
        }
        let width = queue.slots.len().min(shared.max_batch);
        batch.extend(queue.slots.drain(..width));
        drop(queue);
        // Freed queue space: admit blocked submitters.
        shared.space.notify_all();

        let formed = Instant::now();
        for (slot, _) in &batch {
            let mut state = slot.state.lock().unwrap();
            match std::mem::replace(&mut *state, SlotState::InFlight) {
                SlotState::Pending { b } => bufs.push(b),
                _ => unreachable!("queued slots are pending until the batcher drains them"),
            }
        }
        let solve_start = Instant::now();
        shared.plan.solve_batch_in_place(&mut bufs, &mut workspace);
        let solve = solve_start.elapsed();

        shared.counters.batches.fetch_add(1, Ordering::Relaxed);
        shared.counters.widths[width].fetch_add(1, Ordering::Relaxed);
        let done = Instant::now();
        for ((slot, submitted), x) in batch.drain(..).zip(bufs.drain(..)) {
            let timing = RequestTiming {
                queued: formed.duration_since(submitted),
                solve,
                total: done.duration_since(submitted),
                batch_width: width,
            };
            *slot.state.lock().unwrap() = SlotState::Done { x, timing };
            slot.done.notify_all();
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
        }
    }
}
