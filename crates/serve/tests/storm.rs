//! Serving storm: two servers (two plans) on one small shared
//! `SolverRuntime`, many concurrent clients, every response checked
//! bit-for-bit against the serial reference. This is the serving-layer
//! entry in the TSan thread-correctness matrix — the CI job pins single
//! capacities via `SPTRSV_STRESS_CORES` and reruns it under
//! ThreadSanitizer at each.

use sptrsv_exec::{PlanBuilder, SolverRuntime};
use sptrsv_serve::{Admission, ServeBuilder};
use sptrsv_sparse::gen::grid::{grid2d_laplacian, Stencil2D};
use sptrsv_sparse::CsrMatrix;
use std::sync::Arc;
use std::time::Duration;

/// Runtime capacities to stress: `SPTRSV_STRESS_CORES` (comma-separated)
/// or the default sweep.
fn stress_capacities() -> Vec<usize> {
    match std::env::var("SPTRSV_STRESS_CORES") {
        Ok(list) => list
            .split(',')
            .map(|c| c.trim().parse().expect("SPTRSV_STRESS_CORES entries are core counts"))
            .collect(),
        Err(_) => vec![2, 4, 8],
    }
}

fn operands() -> [CsrMatrix; 2] {
    [
        grid2d_laplacian(22, 16, Stencil2D::FivePoint, 0.5).lower_triangle().unwrap(),
        grid2d_laplacian(14, 14, Stencil2D::NinePoint, 0.5).lower_triangle().unwrap(),
    ]
}

#[test]
fn serving_storm_stays_bit_identical_under_contention() {
    for capacity in stress_capacities() {
        let runtime = Arc::new(SolverRuntime::new(capacity));
        let servers: Vec<_> = operands()
            .into_iter()
            .zip(["growlocal:grant=fair,elastic=on", "spmp@async"])
            .map(|(l, spec)| {
                let plan = PlanBuilder::new(&l)
                    .scheduler(spec)
                    .cores(capacity.min(4))
                    .runtime(Arc::clone(&runtime))
                    .build()
                    .unwrap();
                Arc::new(
                    ServeBuilder::new(plan)
                        .max_batch(4)
                        .batch_wait(Duration::from_micros(100))
                        .queue_depth(8)
                        .admission(Admission::Block)
                        .start(),
                )
            })
            .collect();
        let clients_per_server = 3;
        let rounds = 15;
        std::thread::scope(|scope| {
            for (s, server) in servers.iter().enumerate() {
                for client in 0..clients_per_server {
                    let server = Arc::clone(server);
                    scope.spawn(move || {
                        let n = server.plan().internal_matrix().n_rows();
                        let mut b: Vec<f64> = (0..n)
                            .map(|i| ((i * 7 + client * 13 + s * 29) % 19) as f64 - 9.0)
                            .collect();
                        for round in 0..rounds {
                            let expected = server.plan().solve(&b);
                            let response = server.submit(b).unwrap().wait();
                            assert_eq!(
                                response.x, expected,
                                "server {s} client {client} round {round} diverged"
                            );
                            assert!(response.timing.batch_width <= 4);
                            b = response.x;
                            for v in &mut b {
                                *v = (*v * 3.0 + round as f64).rem_euclid(23.0) - 11.0;
                            }
                        }
                    });
                }
            }
        });
        for server in servers {
            let stats = Arc::into_inner(server).unwrap().shutdown();
            assert_eq!(stats.completed, clients_per_server * rounds);
            assert_eq!(stats.shed, 0);
            let fused: usize = stats.widths.iter().enumerate().map(|(w, c)| w * c).sum();
            assert_eq!(fused, stats.completed, "width histogram does not add up");
        }
        assert_eq!(runtime.cores_in_use(), 0, "capacity {capacity} leaked leases");
    }
}
