//! Batcher semantics: linger expiry, `batch=N` capping, backpressure,
//! clean shutdown, in-place buffers — plus the bit-identity property test
//! (any interleaving of submissions matches serial per-request solves
//! bit-for-bit).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sptrsv_exec::{PlanBuilder, SolvePlan, SolverRuntime};
use sptrsv_serve::{Admission, ServeBuilder, SolveServer, SubmitError};
use sptrsv_sparse::gen::grid::{grid2d_laplacian, Stencil2D};
use sptrsv_sparse::CsrMatrix;
use std::sync::Arc;
use std::time::Duration;

fn lower() -> CsrMatrix {
    grid2d_laplacian(20, 14, Stencil2D::FivePoint, 0.5).lower_triangle().unwrap()
}

/// A plan pinned to its own small runtime so tests are hermetic.
fn plan() -> SolvePlan {
    PlanBuilder::new(&lower()).cores(2).runtime(Arc::new(SolverRuntime::new(2))).build().unwrap()
}

fn rhs(n: usize, salt: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 7 + salt * 13) % 23) as f64 - 11.0).collect()
}

#[test]
fn a_lone_request_dispatches_at_linger_expiry() {
    let linger = Duration::from_millis(30);
    let server = ServeBuilder::new(plan()).max_batch(4).batch_wait(linger).start();
    let n = server.plan().internal_matrix().n_rows();
    let b = rhs(n, 1);
    let expected = server.plan().solve(&b);
    let response = server.submit(b).unwrap().wait();
    // Nobody joined, so the batch went out alone — but only after the
    // full linger (queued time covers the wait for company).
    assert_eq!(response.timing.batch_width, 1);
    assert!(response.timing.queued >= linger, "dispatched before the linger expired");
    assert_eq!(response.x, expected);
    let stats = server.shutdown();
    assert_eq!((stats.submitted, stats.completed, stats.batches), (1, 1, 1));
    assert_eq!(stats.widths[1], 1);
}

#[test]
fn zero_linger_dispatches_immediately() {
    let server = ServeBuilder::new(plan()).max_batch(4).batch_wait(Duration::ZERO).start();
    let n = server.plan().internal_matrix().n_rows();
    for round in 0..8 {
        let b = rhs(n, round);
        let expected = server.plan().solve(&b);
        let response = server.submit(b).unwrap().wait();
        assert_eq!(response.x, expected, "round {round}");
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 8);
}

#[test]
fn batches_are_capped_at_max_batch() {
    // A very long linger forces dispatch to happen only on full batches:
    // four requests through a width-2 server must ride exactly two
    // width-2 batches, never a wider one.
    let server = ServeBuilder::new(plan())
        .max_batch(2)
        .batch_wait(Duration::from_secs(10))
        .queue_depth(8)
        .start();
    let n = server.plan().internal_matrix().n_rows();
    let requests: Vec<Vec<f64>> = (0..4).map(|salt| rhs(n, salt)).collect();
    let expected: Vec<Vec<f64>> = requests.iter().map(|b| server.plan().solve(b)).collect();
    let handles: Vec<_> = requests.into_iter().map(|b| server.submit(b).unwrap()).collect();
    for (handle, expected) in handles.into_iter().zip(&expected) {
        let response = handle.wait();
        assert_eq!(response.timing.batch_width, 2);
        assert_eq!(&response.x, expected);
    }
    let stats = server.shutdown();
    assert_eq!(stats.batches, 2);
    assert_eq!(stats.widths[2], 2);
    assert_eq!(stats.completed, 4);
}

#[test]
fn shed_admission_rejects_when_the_queue_is_at_depth() {
    // Stall the batcher with a long linger + wide batch so the queue
    // genuinely fills, then watch the third submission bounce with its
    // buffer intact.
    let server = ServeBuilder::new(plan())
        .max_batch(8)
        .batch_wait(Duration::from_secs(10))
        .queue_depth(2)
        .admission(Admission::Shed)
        .start();
    let n = server.plan().internal_matrix().n_rows();
    let h1 = server.submit(rhs(n, 1)).unwrap();
    let h2 = server.submit(rhs(n, 2)).unwrap();
    let shed_b = rhs(n, 3);
    match server.submit(shed_b.clone()) {
        Err(SubmitError::QueueFull { b }) => assert_eq!(b, shed_b, "buffer came back mangled"),
        other => panic!("expected QueueFull, got {other:?}"),
    }
    // Shutdown drains the queued pair; their handles stay redeemable.
    let e1 = server.plan().solve(&rhs(n, 1));
    let e2 = server.plan().solve(&rhs(n, 2));
    let stats = server.shutdown();
    assert_eq!(h1.wait().x, e1);
    assert_eq!(h2.wait().x, e2);
    assert_eq!((stats.submitted, stats.completed, stats.shed), (2, 2, 1));
}

#[test]
fn blocking_admission_loses_nothing_under_pressure() {
    let server = Arc::new(
        ServeBuilder::new(plan())
            .max_batch(3)
            .batch_wait(Duration::from_micros(200))
            .queue_depth(2)
            .admission(Admission::Block)
            .start(),
    );
    let n = server.plan().internal_matrix().n_rows();
    let rounds = 10;
    std::thread::scope(|scope| {
        for client in 0..4 {
            let server = Arc::clone(&server);
            scope.spawn(move || {
                let mut b = rhs(n, client);
                for round in 0..rounds {
                    let expected = server.plan().solve(&b);
                    let response = server.submit(b).unwrap().wait();
                    assert_eq!(response.x, expected, "client {client} round {round}");
                    // Recycle the solved buffer as the next right-hand side.
                    b = response.x;
                    for v in &mut b {
                        *v = (*v * 31.0 + client as f64).rem_euclid(17.0) - 8.0;
                    }
                }
            });
        }
    });
    let stats = Arc::into_inner(server).unwrap().shutdown();
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.completed, 4 * rounds);
    assert_eq!(stats.submitted, 4 * rounds);
}

#[test]
fn shutdown_drains_every_queued_request() {
    let server = ServeBuilder::new(plan())
        .max_batch(2)
        .batch_wait(Duration::from_secs(10))
        .queue_depth(8)
        .start();
    let n = server.plan().internal_matrix().n_rows();
    // Five requests, linger far in the future: only shutdown can flush
    // them (the first pair may dispatch on fullness; the odd tail cannot).
    let requests: Vec<Vec<f64>> = (0..5).map(|salt| rhs(n, salt)).collect();
    let expected: Vec<Vec<f64>> = requests.iter().map(|b| server.plan().solve(b)).collect();
    let handles: Vec<_> = requests.into_iter().map(|b| server.submit(b).unwrap()).collect();
    let stats = server.shutdown();
    assert_eq!(stats.completed, 5, "shutdown left requests unsolved");
    for (i, (handle, expected)) in handles.into_iter().zip(&expected).enumerate() {
        assert_eq!(&handle.wait().x, expected, "request {i}");
    }
}

#[test]
fn wrong_size_is_rejected_with_the_buffer() {
    let server = SolveServer::start(plan());
    let n = server.plan().internal_matrix().n_rows();
    match server.submit(vec![1.0; n / 2]) {
        Err(SubmitError::WrongSize { b, expected }) => {
            assert_eq!(b.len(), n / 2);
            assert_eq!(expected, n);
        }
        other => panic!("expected WrongSize, got {other:?}"),
    }
    assert_eq!(server.shutdown().submitted, 0);
}

#[test]
fn responses_reuse_the_submitted_buffer() {
    // The serving path is zero-copy end to end: the solution comes back
    // in the very allocation the request was submitted with.
    let server = ServeBuilder::new(plan()).batch_wait(Duration::ZERO).start();
    let n = server.plan().internal_matrix().n_rows();
    let b = rhs(n, 5);
    let ptr = b.as_ptr();
    let response = server.submit(b).unwrap().wait();
    assert_eq!(response.x.as_ptr(), ptr, "the solution moved to a new allocation");
    assert!(response.timing.total >= response.timing.queued);
    assert!(response.timing.total >= response.timing.solve);
    assert!(response.timing.batch_width >= 1);
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Any interleaving of concurrent submissions yields results
    // bit-identical to solving each request alone on the same plan.
    #[test]
    fn any_interleaving_is_bit_identical_to_serial_solves(
        seed in any::<u64>(),
        per_client in 1usize..6,
        width in 1usize..5,
        linger_us in 0u64..400,
    ) {
        let server = Arc::new(
            ServeBuilder::new(plan())
                .max_batch(width)
                .batch_wait(Duration::from_micros(linger_us))
                .queue_depth(16)
                .start(),
        );
        let n = server.plan().internal_matrix().n_rows();
        let clients = 3;
        std::thread::scope(|scope| {
            let mut workers = Vec::new();
            for client in 0..clients {
                let server = Arc::clone(&server);
                workers.push(scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(seed ^ ((client as u64) << 17));
                    for round in 0..per_client {
                        let b: Vec<f64> =
                            (0..n).map(|_| rng.gen_range(-8.0..8.0)).collect();
                        let expected = server.plan().solve(&b);
                        let handle = server.submit(b).unwrap();
                        if rng.gen_range(0.0..1.0) < 0.5 {
                            // Vary the interleaving: sometimes let other
                            // clients pile in before redeeming.
                            std::thread::sleep(Duration::from_micros(
                                rng.gen_range(0..200u64),
                            ));
                        }
                        let response = handle.wait();
                        if response.x != expected {
                            return Err((client, round));
                        }
                        if response.timing.batch_width > width {
                            return Err((client, round));
                        }
                    }
                    Ok(())
                }));
            }
            for worker in workers {
                prop_assert!(worker.join().unwrap().is_ok(), "a fused solve diverged");
            }
            Ok(())
        })?;
        let stats = Arc::into_inner(server).unwrap().shutdown();
        prop_assert_eq!(stats.completed, clients * per_client);
        prop_assert_eq!(stats.shed, 0);
    }
}

#[test]
fn an_auto_picked_plan_serves() {
    // The tuner's winner flows straight into the serving front-end: build
    // via the `auto` entry point, serve a few requests, and hold the same
    // bit-identity contract as any fixed-spec plan.
    use sptrsv_tune::{AutoPlanBuilder, Tuner};
    let l = lower();
    let plan = PlanBuilder::auto_with(&Tuner::new(&l).cores(2))
        .expect("auto resolution on a well-formed operand")
        .runtime(Arc::new(SolverRuntime::new(2)))
        .build()
        .expect("auto-picked spec builds");
    let server = ServeBuilder::new(plan).max_batch(4).batch_wait(Duration::ZERO).start();
    let n = server.plan().internal_matrix().n_rows();
    for round in 0..6 {
        let b = rhs(n, round);
        let expected = server.plan().solve(&b);
        let response = server.submit(b).unwrap().wait();
        assert_eq!(response.x, expected, "round {round}");
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 6);
}
