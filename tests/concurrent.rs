//! Concurrent-plans stress: many plans solving from many threads on one
//! small `SolverRuntime` — the multi-tenant regime the runtime redesign
//! exists for.
//!
//! Assertions:
//! * every concurrently produced solution is **bit-identical** to the
//!   serial reference (lease-width degradation under contention never
//!   changes the arithmetic);
//! * lease accounting holds under fire: while plans are solving, cores in
//!   use never exceed the runtime's capacity, and everything is returned
//!   when the storm is over;
//! * `block-gl` scheduling (whose per-block scheduling runs through the
//!   shared runtime via the `rayon` bridge) composes with concurrent
//!   execution.
//!
//! The runtime capacities exercised default to {2, 4, 8}; the CI
//! thread-correctness job pins single capacities via the
//! `SPTRSV_STRESS_CORES` environment variable and reruns the suite under
//! ThreadSanitizer at each.

use sptrsv::exec::serial::solve_lower_serial;
use sptrsv::exec::{ExecModel, PlanBuilder, SolverRuntime};
use sptrsv::sparse::gen::grid::{grid2d_laplacian, Stencil2D};
use sptrsv::sparse::CsrMatrix;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Runtime capacities to stress: `SPTRSV_STRESS_CORES` (comma-separated)
/// or the default sweep.
fn stress_capacities() -> Vec<usize> {
    match std::env::var("SPTRSV_STRESS_CORES") {
        Ok(list) => list
            .split(',')
            .map(|c| c.trim().parse().expect("SPTRSV_STRESS_CORES entries are core counts"))
            .collect(),
        Err(_) => vec![2, 4, 8],
    }
}

fn problem() -> (CsrMatrix, Vec<f64>, Vec<f64>) {
    let l = grid2d_laplacian(24, 18, Stencil2D::FivePoint, 0.5).lower_triangle().unwrap();
    let n = l.n_rows();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 7) % 13) as f64).collect();
    let mut reference = vec![0.0; n];
    solve_lower_serial(&l, &b, &mut reference);
    (l, b, reference)
}

/// The pipelines racing on the shared runtime: every execution model, the
/// policy dimensions (grant fairness and elastic leases included), and
/// the bridge-parallel `block-gl`.
const SPECS: [&str; 10] = [
    "growlocal@barrier",
    "spmp@async",
    "growlocal:sync=full,backoff=yield@async",
    "funnel-gl:cap=auto,grant=fair@barrier",
    "block-gl:blocks=4,elastic=on@barrier",
    "hdagg:grant=cap=2@async",
    "growlocal:grant=fair,elastic=on@barrier",
    "bspg:grant=fair,elastic=on,backoff=yield@barrier",
    "growlocal:grant=fair,elastic=on,shrink=on@barrier",
    "bspg:grant=fair,elastic=on,shrink=on,backoff=yield@barrier",
];

#[test]
fn concurrent_plans_are_bit_identical_to_serial() {
    let (l, b, reference) = problem();
    for capacity in stress_capacities() {
        let runtime = Arc::new(SolverRuntime::new(capacity));
        let peak_violations = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for spec in SPECS {
                let runtime = Arc::clone(&runtime);
                let (l, b, reference) = (&l, &b, &reference);
                let peak_violations = &peak_violations;
                scope.spawn(move || {
                    // Each tenant plans for 4 cores; the shared runtime
                    // grants whatever is free per solve. Reordering is off
                    // so every row's dot product runs in the original CSR
                    // order — the precondition for bit-identity to serial
                    // (as in the executor-agreement suite).
                    let plan = PlanBuilder::new(l)
                        .scheduler(spec)
                        .cores(4)
                        .reorder(false)
                        .runtime(Arc::clone(&runtime))
                        .build()
                        .unwrap_or_else(|e| panic!("{spec}: {e}"));
                    let mut ws = plan.workspace();
                    let mut x = vec![0.0; b.len()];
                    for round in 0..15 {
                        x.fill(f64::NAN);
                        plan.solve_into(b, &mut x, &mut ws);
                        // The accounting invariant, sampled mid-storm.
                        if runtime.cores_in_use() > runtime.capacity() {
                            peak_violations.fetch_add(1, Ordering::Relaxed);
                        }
                        assert_eq!(
                            &x, reference,
                            "{spec} diverged from serial (capacity {capacity}, round {round})"
                        );
                    }
                });
            }
        });
        assert_eq!(
            peak_violations.load(Ordering::Relaxed),
            0,
            "cores_in_use exceeded capacity {capacity}"
        );
        assert_eq!(runtime.cores_in_use(), 0, "leases outlived their solves");
        // The runtime is still serviceable at full width afterwards.
        assert_eq!(runtime.lease(capacity).size(), capacity);
    }
}

#[test]
fn fair_grants_prevent_starvation_in_a_six_tenant_storm() {
    // The starvation regression the `fair` grant policy exists for: six
    // tenants hammering a capacity-8 runtime, each wanting all 8 cores.
    // Under `grant=greedy` a first tenant can hold the whole runtime while
    // later ones run serial; under `grant=fair` no tenant may observe a
    // width-1 grant while another concurrently holds more than
    // fair-share + 1 = ceil(8/6) + 1 = 3 cores. Each storm thread
    // declares itself a steady tenant (`register_tenant`), which is what
    // a serving process with ongoing traffic does — so the fair share
    // stays pinned at ceil(8/6) even in the instants a thread is between
    // solves, and the invariant holds under any scheduling.
    use sptrsv::exec::GrantPolicy;
    const TENANTS: usize = 6;
    const CAPACITY: usize = 8;
    let fair_share = CAPACITY.div_ceil(TENANTS);
    let runtime = Arc::new(SolverRuntime::new(CAPACITY));
    // widths[t] is tenant t's currently held width (0 = none). A tenant
    // publishes its grant *before* sampling the others and clears it
    // *before* releasing, so a sampled pair of widths was truly held
    // concurrently.
    let widths: Vec<AtomicUsize> = (0..TENANTS).map(|_| AtomicUsize::new(0)).collect();
    let violations = AtomicUsize::new(0);
    // Register the whole tenant set before any thread leases: the fair
    // denominator is ≥ 6 from the very first grant, so not even the
    // storm's ramp-up can hand one tenant the machine.
    let registrations: Vec<_> = (0..TENANTS).map(|_| runtime.register_tenant()).collect();
    std::thread::scope(|scope| {
        for me in 0..TENANTS {
            let runtime = &runtime;
            let widths = &widths;
            let violations = &violations;
            scope.spawn(move || {
                for _ in 0..200 {
                    let mut lease = runtime.lease_with(CAPACITY, GrantPolicy::Fair);
                    widths[me].store(lease.size(), Ordering::SeqCst);
                    if lease.size() == 1 {
                        for (other, width) in widths.iter().enumerate() {
                            let held = width.load(Ordering::SeqCst);
                            if other != me && held > fair_share + 1 {
                                violations.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    }
                    lease.run(sptrsv::exec::Backoff::Spin, &|_| {
                        for _ in 0..50 {
                            std::hint::spin_loop();
                        }
                    });
                    widths[me].store(0, Ordering::SeqCst);
                    drop(lease);
                }
            });
        }
    });
    assert_eq!(
        violations.load(Ordering::SeqCst),
        0,
        "a width-1 tenant coexisted with a > fair-share + 1 monopolist"
    );
    assert_eq!(runtime.cores_in_use(), 0);
    drop(registrations);
    assert_eq!(runtime.active_tenants(), 0);
}

#[test]
fn elastic_solves_under_storm_stay_bit_identical() {
    // Elastic growth under real contention: tenants with elastic barrier
    // plans race tenants that acquire-and-release raw leases, so running
    // solves keep seeing cores freed mid-solve (growth opportunities at
    // many different supersteps). Every solution must stay bit-identical
    // to serial regardless of where growth lands.
    let (l, b, reference) = problem();
    let runtime = Arc::new(SolverRuntime::new(4));
    let stop = AtomicUsize::new(0);
    let stop = &stop;
    std::thread::scope(|scope| {
        // Two churn tenants: repeatedly grab and drop width-2 leases.
        for _ in 0..2 {
            let runtime = Arc::clone(&runtime);
            scope.spawn(move || {
                while stop.load(Ordering::Relaxed) == 0 {
                    let mut lease = runtime.lease(2);
                    lease.run(sptrsv::exec::Backoff::Spin, &|_| {
                        for _ in 0..500 {
                            std::hint::spin_loop();
                        }
                    });
                    drop(lease);
                    std::thread::yield_now();
                }
            });
        }
        // Two elastic solver tenants.
        let solvers: Vec<_> = (0..2)
            .map(|_| {
                let runtime = Arc::clone(&runtime);
                let (l, b, reference) = (&l, &b, &reference);
                scope.spawn(move || {
                    let plan = PlanBuilder::new(l)
                        .scheduler("growlocal:grant=fair,elastic=on@barrier")
                        .cores(4)
                        .reorder(false)
                        .runtime(Arc::clone(&runtime))
                        .build()
                        .unwrap();
                    let mut ws = plan.workspace();
                    let mut x = vec![0.0; b.len()];
                    for round in 0..20 {
                        x.fill(f64::NAN);
                        plan.solve_into(b, &mut x, &mut ws);
                        assert_eq!(&x, reference, "elastic storm diverged at round {round}");
                    }
                })
            })
            .collect();
        for solver in solvers {
            solver.join().unwrap();
        }
        stop.store(1, Ordering::Relaxed);
    });
    assert_eq!(runtime.cores_in_use(), 0, "elastic storm leaked leases");
}

#[test]
fn many_tenants_on_one_shared_plan_and_runtime() {
    // The other concurrency axis: one *shared* plan driven from many
    // threads (SolvePlan is Sync; the async executor's generation flags
    // serialize overlapping solves internally).
    let (l, b, reference) = problem();
    for model in [ExecModel::Barrier, ExecModel::Async] {
        let runtime = Arc::new(SolverRuntime::new(3));
        let plan = Arc::new(
            PlanBuilder::new(&l)
                .cores(3)
                .reorder(false)
                .execution(model)
                .runtime(Arc::clone(&runtime))
                .build()
                .unwrap(),
        );
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let plan = Arc::clone(&plan);
                let (b, reference) = (&b, &reference);
                scope.spawn(move || {
                    let mut ws = plan.workspace();
                    let mut x = vec![0.0; b.len()];
                    for round in 0..20 {
                        plan.solve_into(b, &mut x, &mut ws);
                        assert_eq!(&x, reference, "{model} round {round}");
                    }
                });
            }
        });
        assert_eq!(runtime.cores_in_use(), 0);
    }
}

#[test]
fn degraded_widths_upper_and_multi_rhs_stay_exact() {
    // Orientation conjugation and multi-RHS under a capacity-1 runtime
    // (everything degrades to serial leases) and a roomy one must agree
    // bit-for-bit.
    let (l, b, _) = problem();
    let u = l.transpose();
    let n = u.n_rows();
    let roomy = Arc::new(SolverRuntime::new(4));
    let tight = Arc::new(SolverRuntime::new(1));
    let mut solutions = Vec::new();
    for runtime in [&roomy, &tight] {
        let plan = PlanBuilder::new(&u)
            .orientation(sptrsv::exec::Orientation::Upper)
            .scheduler("growlocal@async")
            .cores(4)
            .runtime(Arc::clone(runtime))
            .build()
            .unwrap();
        solutions.push(plan.solve(&b));
        let bm: Vec<f64> = b.iter().flat_map(|&v| [v, 0.5 * v]).collect();
        let xm = plan.solve_multi(&bm, 2);
        let x = solutions.last().unwrap();
        for i in 0..n {
            assert_eq!(xm[2 * i], x[i], "multi-RHS column 0 diverged at row {i}");
        }
    }
    assert_eq!(solutions[0], solutions[1], "lease width changed the bits");
}

#[test]
fn shrink_storm_wide_tenant_narrows_within_one_superstep_of_a_join() {
    // The retroactive-fairness storm: a wide elastic+shrink dispatch is
    // mid-solve when a tenant joins (registered from thread 0's body, so
    // the join deterministically precedes the next boundary). The very
    // next superstep must run at the halved share, the shed cores must
    // satisfy the joiner's blocked lease, and the mid-storm accounting
    // must show both tenants inside the capacity. No sleeps: the only
    // waits are protocol-bounded (the joiner unblocks once the drained
    // cores are reclaimed, one boundary after the shed).
    use sptrsv::exec::{Backoff, ElasticGrowth, GrantPolicy, TenantRegistration};
    use std::sync::Mutex;
    const CAPACITY: usize = 4;
    const N_STEPS: usize = 40;
    const JOIN_AT: usize = 5;
    let runtime = Arc::new(SolverRuntime::new(CAPACITY));
    let me = runtime.register_tenant();
    let joined: Mutex<Vec<TenantRegistration>> = Mutex::new(Vec::new());
    let joiner_width = AtomicUsize::new(0);
    let release_joiner = AtomicUsize::new(0);
    let mid_storm_in_use = AtomicUsize::new(0);
    let widths: Vec<AtomicUsize> = (0..N_STEPS).map(|_| AtomicUsize::new(0)).collect();
    let (go_tx, go_rx) = std::sync::mpsc::channel::<()>();
    std::thread::scope(|scope| {
        let runtime_ref = &runtime;
        let joiner_width = &joiner_width;
        let release_joiner = &release_joiner;
        scope.spawn(move || {
            go_rx.recv().unwrap();
            // Blocks until the shed cores are reclaimed, then holds its
            // grant until the solver has audited the accounting.
            let lease = runtime_ref.lease_with(CAPACITY, GrantPolicy::Fair);
            joiner_width.store(lease.size(), Ordering::SeqCst);
            while release_joiner.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
            drop(lease);
        });
        let mut lease = runtime.lease_with(CAPACITY, GrantPolicy::Fair);
        assert_eq!(lease.size(), CAPACITY, "storm did not start wide");
        lease.run_supersteps(
            Backoff::Yield,
            N_STEPS,
            Some(ElasticGrowth { grant: GrantPolicy::Fair, max_width: CAPACITY, shrink: true }),
            &|thread, width, step| {
                if thread != 0 {
                    return;
                }
                widths[step].store(width, Ordering::SeqCst);
                if step == JOIN_AT {
                    // The join: registration first (visible to the next
                    // boundary), then the joiner starts leasing.
                    joined.lock().unwrap().push(runtime.register_tenant());
                    go_tx.send(()).unwrap();
                }
                if step == JOIN_AT + 5 && mid_storm_in_use.load(Ordering::SeqCst) == 0 {
                    // Protocol-bounded wait: shed at JOIN_AT → reclaim one
                    // boundary later → the joiner's lease_with unblocks.
                    while joiner_width.load(Ordering::SeqCst) == 0 {
                        std::thread::yield_now();
                    }
                    mid_storm_in_use.store(runtime.cores_in_use(), Ordering::SeqCst);
                    release_joiner.store(1, Ordering::SeqCst);
                }
            },
        );
        drop(lease);
    });
    let widths: Vec<usize> = widths.iter().map(|w| w.load(Ordering::SeqCst)).collect();
    let fair = CAPACITY.div_ceil(2);
    assert_eq!(&widths[..=JOIN_AT], &vec![CAPACITY; JOIN_AT + 1][..]);
    assert_eq!(
        widths[JOIN_AT + 1],
        fair,
        "wide tenant did not narrow within one superstep of the join: {widths:?}"
    );
    assert!(widths[JOIN_AT + 1..].iter().all(|&w| w == fair), "width bounced: {widths:?}");
    assert_eq!(joiner_width.load(Ordering::SeqCst), fair, "joiner did not get the fair share");
    assert_eq!(
        mid_storm_in_use.load(Ordering::SeqCst),
        CAPACITY,
        "mid-storm accounting lost a tenant"
    );
    drop(me);
    drop(joined);
    assert_eq!(runtime.cores_in_use(), 0);
    assert_eq!(runtime.active_tenants(), 0);
}
