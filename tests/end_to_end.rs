//! End-to-end integration tests: datasets → schedulers → executors.
//!
//! Every scheduler must produce a valid schedule on every suite, and every
//! executor must reproduce the serial solution bit-for-bit-close.

use sptrsv::exec::async_exec::AsyncExecutor;
use sptrsv::exec::verify::deviation_from_serial;
use sptrsv::prelude::*;

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(GrowLocal::new()),
        Box::new(WavefrontScheduler),
        Box::new(HDagg::default()),
        Box::new(SpMp),
        Box::new(BspG::default()),
        Box::new(BlockParallel::new(3)),
    ]
}

#[test]
fn every_scheduler_is_valid_and_correct_on_every_suite() {
    for kind in SuiteKind::all() {
        let suite = load_suite(kind, Scale::Test, 3);
        // One representative instance per suite keeps the test fast.
        let ds = &suite[0];
        let dag = ds.dag();
        let n = ds.lower.n_rows();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 13) % 17) as f64 / 7.0).collect();
        for sched in schedulers() {
            let s = sched.schedule(&dag, 4);
            s.validate(&dag).unwrap_or_else(|e| {
                panic!("{} invalid on {} ({kind:?}): {e}", sched.name(), ds.name)
            });
            let mut x = vec![0.0; n];
            solve_with_barriers(&ds.lower, &s, &b, &mut x).expect("validated above");
            let dev = deviation_from_serial(&ds.lower, &b, &x);
            assert!(
                dev < 1e-10,
                "{} on {}: deviation {dev}",
                sched.name(),
                ds.name
            );
        }
    }
}

#[test]
fn funnel_gl_valid_and_correct_on_every_suite() {
    for kind in SuiteKind::all() {
        let suite = load_suite(kind, Scale::Test, 4);
        let ds = &suite[0];
        let dag = ds.dag();
        let fgl = FunnelGrowLocal::for_dag(&dag, 4);
        let s = fgl.schedule(&dag, 4);
        s.validate(&dag).unwrap_or_else(|e| panic!("Funnel+GL invalid on {}: {e}", ds.name));
        let n = ds.lower.n_rows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        solve_with_barriers(&ds.lower, &s, &b, &mut x).expect("valid");
        assert!(deviation_from_serial(&ds.lower, &b, &x) < 1e-10);
    }
}

#[test]
fn reordered_problem_solves_identically() {
    let suite = load_suite(SuiteKind::SuiteSparse, Scale::Test, 5);
    for ds in suite.iter().take(3) {
        let dag = ds.dag();
        let schedule = GrowLocal::new().schedule(&dag, 4);
        let reordered = reorder_for_locality(&ds.lower, &schedule).expect("topological");
        let n = ds.lower.n_rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin() + 2.0).collect();
        // Solve in the reordered space and map back.
        let pb = reordered.permutation.apply_vec(&b);
        let mut px = vec![0.0; n];
        solve_with_barriers(&reordered.matrix, &reordered.schedule, &pb, &mut px)
            .expect("valid");
        let x = reordered.permutation.apply_inverse_vec(&px);
        assert!(
            deviation_from_serial(&ds.lower, &b, &x) < 1e-9,
            "reordered solve differs on {}",
            ds.name
        );
    }
}

#[test]
fn async_executor_correct_on_hard_instance() {
    let suite = load_suite(SuiteKind::NarrowBandwidth, Scale::Test, 6);
    let ds = &suite[0];
    let dag = ds.dag();
    let schedule = SpMp.schedule(&dag, 4);
    let reduced = SpMp.reduced_dag(&dag);
    let exec = AsyncExecutor::new(&ds.lower, &schedule, &reduced).expect("valid");
    let n = ds.lower.n_rows();
    let b: Vec<f64> = (0..n).map(|i| ((i % 23) as f64) - 11.0).collect();
    let mut x = vec![0.0; n];
    exec.solve(&ds.lower, &b, &mut x);
    assert!(deviation_from_serial(&ds.lower, &b, &x) < 1e-10);
}

#[test]
fn growlocal_reduces_barriers_on_all_suites() {
    // Table 7.2's qualitative claim: GrowLocal needs far fewer barriers than
    // there are wavefronts, on every suite.
    for kind in SuiteKind::all() {
        let suite = load_suite(kind, Scale::Test, 7);
        for ds in suite.iter().take(2) {
            let dag = ds.dag();
            let s = GrowLocal::new().schedule(&dag, 4);
            let wf = wavefronts(&dag).n_fronts();
            assert!(
                s.n_supersteps() <= wf,
                "{}: {} supersteps vs {} wavefronts",
                ds.name,
                s.n_supersteps(),
                wf
            );
        }
    }
}

#[test]
fn schedules_are_deterministic() {
    let suite = load_suite(SuiteKind::Metis, Scale::Test, 8);
    let ds = &suite[0];
    let dag = ds.dag();
    for sched in schedulers() {
        let a = sched.schedule(&dag, 4);
        let b = sched.schedule(&dag, 4);
        assert_eq!(a, b, "{} is nondeterministic", sched.name());
    }
}
