//! End-to-end integration tests: datasets → registry → schedulers →
//! executors.
//!
//! Every registered scheduler must produce a valid schedule on every suite,
//! and every executor must reproduce the serial solution
//! bit-for-bit-close. The scheduler set comes from
//! `sptrsv_core::registry::list()` — there is no hand-rolled list to drift.

use sptrsv::core::registry;
use sptrsv::core::CompiledSchedule;
use sptrsv::dag::transitive::reduction_invocations;
use sptrsv::exec::async_exec::AsyncExecutor;
use sptrsv::exec::verify::deviation_from_serial;
use sptrsv::exec::{solve_lower_serial, ExecModel, MultiRhsExecutor, PlanBuilder};
use sptrsv::prelude::*;

#[test]
fn every_registered_scheduler_is_valid_and_correct_on_every_suite() {
    for kind in SuiteKind::all() {
        let suite = load_suite(kind, Scale::Test, 3);
        // One representative instance per suite keeps the test fast.
        let ds = &suite[0];
        let dag = ds.dag();
        let n = ds.lower.n_rows();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 13) % 17) as f64 / 7.0).collect();
        for info in registry::list() {
            let sched = registry::resolve(info.name, &dag, 4).expect("registered");
            let s = sched.schedule(&dag, 4);
            s.validate(&dag)
                .unwrap_or_else(|e| panic!("{} invalid on {} ({kind:?}): {e}", info.name, ds.name));
            let mut x = vec![0.0; n];
            solve_with_barriers(&ds.lower, &s, &b, &mut x).expect("validated above");
            let dev = deviation_from_serial(&ds.lower, &b, &x);
            assert!(dev < 1e-10, "{} on {}: deviation {dev}", info.name, ds.name);
        }
    }
}

#[test]
fn all_executors_agree_through_the_compiled_schedule() {
    // Acceptance check: barrier, multi-RHS, async and simulated executions
    // all run off the same CompiledSchedule layout; the numeric ones must be
    // bit-identical-close to the serial reference.
    let suite = load_suite(SuiteKind::SuiteSparse, Scale::Test, 11);
    let ds = &suite[1 % suite.len()];
    let dag = ds.dag();
    let n = ds.lower.n_rows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 29) % 31) as f64 / 7.0 - 2.0).collect();
    let schedule = {
        let sched = registry::resolve("growlocal", &dag, 4).unwrap();
        sched.schedule(&dag, 4)
    };
    // Barrier executor.
    let mut x_barrier = vec![0.0; n];
    solve_with_barriers(&ds.lower, &schedule, &b, &mut x_barrier).expect("valid");
    assert!(deviation_from_serial(&ds.lower, &b, &x_barrier) < 1e-12);
    // Multi-RHS executor with r = 1 must match exactly.
    let multi = MultiRhsExecutor::new(&ds.lower, &schedule).expect("valid");
    let mut x_multi = vec![0.0; n];
    multi.solve(&ds.lower, &b, &mut x_multi, 1);
    assert_eq!(x_barrier, x_multi, "multi-RHS r=1 diverged from barrier executor");
    // Async executor waiting on the full DAG.
    let asynchronous = AsyncExecutor::new(&ds.lower, &schedule, &dag).expect("valid");
    let mut x_async = vec![0.0; n];
    asynchronous.solve(&ds.lower, &b, &mut x_async);
    assert_eq!(x_barrier, x_async, "async executor diverged from barrier executor");
    // Simulator runs the same cells; determinism pins the traversal.
    let profile = MachineProfile::intel_xeon_22();
    let compiled = CompiledSchedule::from_schedule(&schedule);
    assert_eq!(
        simulate_barrier(&ds.lower, &compiled, &profile),
        simulate_barrier(&ds.lower, &compiled, &profile)
    );
}

#[test]
fn every_scheduler_model_pair_is_one_spec_string_and_all_models_agree() {
    // Acceptance check: every (scheduler × supported execution model) pair
    // of `registry::list()` is reachable through a single spec string via
    // `PlanBuilder`, and on the same problem all execution models of one
    // scheduler produce the identical solution (the executors share the
    // per-row arithmetic, so agreement is bitwise).
    let suite = load_suite(SuiteKind::SuiteSparse, Scale::Test, 11);
    let ds = &suite[0];
    let n = ds.lower.n_rows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 29) % 31) as f64 / 7.0 - 2.0).collect();
    for info in registry::list() {
        let mut reference: Option<Vec<f64>> = None;
        for &model in info.exec_models {
            let spec = format!("{}@{model}", info.name);
            let plan = PlanBuilder::new(&ds.lower)
                .scheduler(&spec)
                .cores(4)
                .build()
                .unwrap_or_else(|e| panic!("`{spec}`: {e}"));
            assert_eq!(plan.exec_model(), model, "`{spec}` resolved the wrong model");
            assert_eq!(plan.executor().model(), model);
            let x = plan.solve(&b);
            assert!(
                deviation_from_serial(&ds.lower, &b, &x) < 1e-10,
                "`{spec}` diverged from serial"
            );
            // Multi-RHS goes through the same trait object.
            let bm: Vec<f64> = b.iter().flat_map(|&v| [v, -v]).collect();
            let xm = plan.solve_multi(&bm, 2);
            for i in 0..n {
                assert_eq!(xm[2 * i], x[i], "`{spec}` multi-RHS column 0 differs at {i}");
            }
            match &reference {
                None => reference = Some(x),
                Some(r) => assert_eq!(&x, r, "`{spec}` differs from {}'s first model", info.name),
            }
        }
        // The execution policy dimensions must not change the solution
        // either: every sync/backoff variant of the scheduler's async
        // execution (when supported) matches the reference bitwise.
        if info.exec_models.contains(&ExecModel::Async) {
            for policy in [
                "sync=full",
                "sync=reduced",
                "backoff=spin",
                "backoff=yield",
                "sync=full,backoff=yield",
            ] {
                let spec = format!("{}:{policy}@async", info.name);
                let plan = PlanBuilder::new(&ds.lower)
                    .scheduler(&spec)
                    .cores(4)
                    .build()
                    .unwrap_or_else(|e| panic!("`{spec}`: {e}"));
                let x = plan.solve(&b);
                assert_eq!(
                    Some(&x),
                    reference.as_ref(),
                    "`{spec}` diverged from {}'s reference",
                    info.name
                );
            }
        }
    }
}

#[test]
fn repeated_pooled_solves_are_bit_identical_to_serial() {
    // The steady-state contract of the persistent pool: 100 consecutive
    // `solve_into` calls on one plan are bit-identical to the serial
    // reference, for each execution model. Without reordering the internal
    // operand equals the input, and every executor computes each row's dot
    // product in the same CSR order — so agreement is exact, not just close.
    let suite = load_suite(SuiteKind::SuiteSparse, Scale::Test, 21);
    let ds = &suite[0];
    let n = ds.lower.n_rows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 31) % 17) as f64 / 3.0 - 2.0).collect();
    let mut serial = vec![0.0; n];
    solve_lower_serial(&ds.lower, &b, &mut serial);
    for model in ExecModel::ALL {
        let plan =
            PlanBuilder::new(&ds.lower).cores(4).reorder(false).execution(model).build().unwrap();
        let mut ws = plan.workspace();
        let mut x = vec![0.0; n];
        for round in 0..100 {
            x.fill(f64::NAN); // a correct solve rewrites every slot
            plan.solve_into(&b, &mut x, &mut ws);
            assert_eq!(x, serial, "{model} diverged from serial on round {round}");
        }
    }
}

#[test]
fn async_plans_build_their_sync_dag_exactly_once() {
    // Acceptance check for the `Scheduler::sync_dag` hook: an `spmp@async`
    // plan performs exactly one approximate transitive reduction (the hook
    // hands the executor the DAG the scheduler family is defined by),
    // schedulers without a hook leave the single reduction to the planner,
    // and `sync=full` plans never reduce at all. The invocation counter is
    // thread-local, so concurrently running tests cannot disturb the deltas.
    let suite = load_suite(SuiteKind::SuiteSparse, Scale::Test, 22);
    let ds = &suite[0];

    let before = reduction_invocations();
    let plan = PlanBuilder::new(&ds.lower).scheduler("spmp").cores(4).build().unwrap();
    assert_eq!(plan.exec_model(), ExecModel::Async, "spmp defaults to async");
    assert_eq!(reduction_invocations() - before, 1, "spmp@async must reduce exactly once");
    assert!(plan.sync_dag().is_some());

    let before = reduction_invocations();
    let plan = PlanBuilder::new(&ds.lower).scheduler("growlocal@async").cores(4).build().unwrap();
    assert_eq!(reduction_invocations() - before, 1, "hookless async plans reduce exactly once");
    assert!(plan.sync_dag().is_some());

    let before = reduction_invocations();
    let plan = PlanBuilder::new(&ds.lower).scheduler("spmp:sync=full").cores(4).build().unwrap();
    assert_eq!(reduction_invocations() - before, 0, "sync=full must not reduce");
    let full = plan.sync_dag().expect("async plan carries its wait DAG");
    assert_eq!(
        full.n_edges(),
        SolveDag::from_lower_triangular(plan.internal_matrix()).n_edges(),
        "sync=full waits on the full final DAG"
    );

    // Barrier and serial plans never touch the reduction.
    let before = reduction_invocations();
    let plan = PlanBuilder::new(&ds.lower).scheduler("spmp@barrier").cores(4).build().unwrap();
    assert_eq!(reduction_invocations() - before, 0, "spmp@barrier must not reduce");
    assert!(plan.sync_dag().is_none());
}

#[test]
fn nested_scope_changes_the_inner_schedule_through_the_plan() {
    // `funnel-gl:gl.alpha=…` must demonstrably change the inner GrowLocal's
    // schedule, end to end through PlanBuilder.
    let suite = load_suite(SuiteKind::SuiteSparse, Scale::Test, 4);
    let ds = &suite[0];
    let n = ds.lower.n_rows();
    let base = PlanBuilder::new(&ds.lower)
        .scheduler("funnel-gl:cap=16")
        .cores(4)
        .build()
        .expect("valid plan");
    let tuned = PlanBuilder::new(&ds.lower)
        .scheduler("funnel-gl:cap=16,gl.alpha=1,gl.growth=1.01,gl.sync=0")
        .cores(4)
        .build()
        .expect("valid plan");
    assert_ne!(
        base.schedule(),
        tuned.schedule(),
        "gl.* overrides did not change the inner schedule"
    );
    // Both remain correct solvers.
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    for plan in [&base, &tuned] {
        assert!(deviation_from_serial(&ds.lower, &b, &plan.solve(&b)) < 1e-10);
    }
}

#[test]
fn exec_model_knob_and_spec_suffix_agree() {
    let suite = load_suite(SuiteKind::SuiteSparse, Scale::Test, 12);
    let ds = &suite[0];
    let n = ds.lower.n_rows();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.19).sin()).collect();
    for model in ExecModel::ALL {
        let via_spec = PlanBuilder::new(&ds.lower)
            .scheduler(format!("growlocal@{model}"))
            .cores(3)
            .build()
            .unwrap();
        let via_knob = PlanBuilder::new(&ds.lower)
            .scheduler("growlocal")
            .execution(model)
            .cores(3)
            .build()
            .unwrap();
        assert_eq!(via_spec.exec_model(), via_knob.exec_model());
        assert_eq!(via_spec.solve(&b), via_knob.solve(&b), "{model}");
    }
}

#[test]
fn plan_builder_full_pipeline_on_suites() {
    use sptrsv::exec::PreOrder;
    for kind in [SuiteKind::SuiteSparse, SuiteKind::NarrowBandwidth] {
        let suite = load_suite(kind, Scale::Test, 9);
        let ds = &suite[0];
        let n = ds.lower.n_rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin() + 1.5).collect();
        let plan = PlanBuilder::new(&ds.lower)
            .scheduler("funnel-gl:cap=auto")
            .cores(4)
            .pre_order(PreOrder::Rcm)
            .build()
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        let x = plan.solve(&b);
        // The reordered system evaluates the same sums in a different order,
        // so on ill-conditioned random instances the solution is only
        // backward-stable-close to the serial one: check the residual.
        let residual = sptrsv::sparse::linalg::relative_residual(&ds.lower, &x, &b);
        assert!(
            residual < 1e-8,
            "builder pipeline diverged on {} (relative residual {residual:.3e})",
            ds.name
        );
    }
}

#[test]
fn reordered_problem_solves_identically() {
    let suite = load_suite(SuiteKind::SuiteSparse, Scale::Test, 5);
    for ds in suite.iter().take(3) {
        let dag = ds.dag();
        let schedule = GrowLocal::new().schedule(&dag, 4);
        let reordered = reorder_for_locality(&ds.lower, &schedule).expect("topological");
        let n = ds.lower.n_rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin() + 2.0).collect();
        // Solve in the reordered space and map back.
        let pb = reordered.permutation.apply_vec(&b);
        let mut px = vec![0.0; n];
        solve_with_barriers(&reordered.matrix, &reordered.schedule, &pb, &mut px).expect("valid");
        let x = reordered.permutation.apply_inverse_vec(&px);
        assert!(
            deviation_from_serial(&ds.lower, &b, &x) < 1e-9,
            "reordered solve differs on {}",
            ds.name
        );
    }
}

#[test]
fn async_executor_correct_on_hard_instance() {
    let suite = load_suite(SuiteKind::NarrowBandwidth, Scale::Test, 6);
    let ds = &suite[0];
    let dag = ds.dag();
    let schedule = SpMp.schedule(&dag, 4);
    let reduced = SpMp.reduced_dag(&dag);
    let exec = AsyncExecutor::new(&ds.lower, &schedule, &reduced).expect("valid");
    let n = ds.lower.n_rows();
    let b: Vec<f64> = (0..n).map(|i| ((i % 23) as f64) - 11.0).collect();
    let mut x = vec![0.0; n];
    exec.solve(&ds.lower, &b, &mut x);
    assert!(deviation_from_serial(&ds.lower, &b, &x) < 1e-10);
}

#[test]
fn growlocal_reduces_barriers_on_all_suites() {
    // Table 7.2's qualitative claim: GrowLocal needs far fewer barriers than
    // there are wavefronts, on every suite.
    for kind in SuiteKind::all() {
        let suite = load_suite(kind, Scale::Test, 7);
        for ds in suite.iter().take(2) {
            let dag = ds.dag();
            let s = GrowLocal::new().schedule(&dag, 4);
            let wf = wavefronts(&dag).n_fronts();
            assert!(
                s.n_supersteps() <= wf,
                "{}: {} supersteps vs {} wavefronts",
                ds.name,
                s.n_supersteps(),
                wf
            );
        }
    }
}

#[test]
fn schedules_are_deterministic() {
    let suite = load_suite(SuiteKind::Metis, Scale::Test, 8);
    let ds = &suite[0];
    let dag = ds.dag();
    for info in registry::list() {
        let sched = registry::resolve(info.name, &dag, 4).expect("registered");
        let a = sched.schedule(&dag, 4);
        let b = sched.schedule(&dag, 4);
        assert_eq!(a, b, "{} is nondeterministic", info.name);
    }
}
