//! Deterministic lease-trajectory harness for elastic grow/shrink.
//!
//! The tests here pin the elastic runtime's **width trajectories** without
//! any timing: scripted tenancy events (joins, leaves, core frees) fire
//! from thread 0's superstep body, so they happen-before the barrier
//! boundary whose resize decision they drive — the resulting width
//! sequence is exact and asserted step by step. Each trajectory executes
//! the real row kernel over a compiled schedule, so the assertions cover
//! both the protocol (shrink within one superstep of a join, reclaim one
//! boundary later, grant caps respected) and the arithmetic (bit-identity
//! to the serial kernel along every width trajectory, single- and
//! multi-RHS).
//!
//! The topology tests inject a two-socket [`Topology`] and assert the
//! sharding invariants: grants that fit one socket never span two, elastic
//! growth prefers the lease's home socket, and a shrink sheds cross-socket
//! recruits first.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sptrsv::core::registry;
use sptrsv::core::CompiledSchedule;
use sptrsv::exec::serial::solve_lower_serial;
use sptrsv::exec::{
    solve_lower_multi_serial, Backoff, CoreLease, ElasticGrowth, GrantPolicy, SolverRuntime,
    TenantRegistration, Topology,
};
use sptrsv::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A scripted tenancy event, fired by thread 0 at the start of the given
/// superstep — strictly before the boundary whose resize it drives, so
/// the width of the *next* superstep is determined, not racy.
enum Event {
    /// A tenant joins: a steady-tenant registration raises the fair
    /// denominator at the next boundary (the shrink trigger).
    Join,
    /// The most recent joiner leaves (the share grows back).
    Leave,
    /// One pre-held width-1 blocker lease drops (cores free up — the
    /// grow trigger).
    Free,
}

/// What thread 0 observed at each superstep.
struct Trajectory {
    widths: Vec<usize>,
    tenants: Vec<usize>,
}

/// The solution raw pointer shared across lease threads (the same shape
/// as the executors' internal wrapper; cell ownership is disjoint by
/// schedule validity, and barriers order cross-row dependencies).
struct ShareX(*mut f64);
unsafe impl Sync for ShareX {}

/// The exact serial row kernel (CSR-order gather, diagonal last) over one
/// compiled cell, `r` right-hand sides per row — mirrors the executors'
/// `fastmath=off` inner loop, so bit-identity to the serial solvers is
/// the expectation, not a tolerance.
///
/// # Safety
/// Caller must own the cell's rows exclusively and have all dependency
/// rows complete (schedule validity + barrier ordering).
unsafe fn solve_cell(l: &CsrMatrix, b: &[f64], x: *mut f64, r: usize, rows: &[u32]) {
    for &i in rows {
        let i = i as usize;
        let (cols, vals) = l.row(i);
        let k = cols.len() - 1;
        debug_assert_eq!(cols[k], i, "row {i} lacks its diagonal");
        for c in 0..r {
            *x.add(i * r + c) = b[i * r + c];
        }
        for (&j, &v) in cols[..k].iter().zip(&vals[..k]) {
            for c in 0..r {
                *x.add(i * r + c) -= v * *x.add(j * r + c);
            }
        }
        let diag = vals[k];
        for c in 0..r {
            *x.add(i * r + c) /= diag;
        }
    }
}

/// Runs `compiled` through the elastic superstep protocol under a
/// scripted tenancy trajectory, solving `l x = b` (`r` right-hand sides)
/// with the real kernel at every width the script produces.
#[allow(clippy::too_many_arguments)]
fn run_scripted(
    runtime: &SolverRuntime,
    l: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    r: usize,
    compiled: &CompiledSchedule,
    grant: GrantPolicy,
    blockers: usize,
    shrink: bool,
    script: &[(usize, Event)],
) -> Trajectory {
    assert_eq!(x.len(), l.n_rows() * r);
    let held: Mutex<Vec<CoreLease>> = Mutex::new((0..blockers).map(|_| runtime.lease(1)).collect());
    let me = runtime.register_tenant();
    let joined: Mutex<Vec<TenantRegistration>> = Mutex::new(Vec::new());
    let n_steps = compiled.n_supersteps();
    let n_cores = compiled.n_cores();
    let widths: Vec<AtomicUsize> = (0..n_steps).map(|_| AtomicUsize::new(0)).collect();
    let tenants: Vec<AtomicUsize> = (0..n_steps).map(|_| AtomicUsize::new(0)).collect();
    let shared = ShareX(x.as_mut_ptr());
    let shared = &shared;
    let mut lease = runtime.lease_with(n_cores, grant);
    let growth = ElasticGrowth { grant, max_width: n_cores, shrink };
    lease.run_supersteps(Backoff::Spin, n_steps, Some(growth), &|thread, width, step| {
        if thread == 0 {
            for (at, event) in script {
                if *at == step {
                    match event {
                        Event::Join => joined.lock().unwrap().push(runtime.register_tenant()),
                        Event::Leave => drop(joined.lock().unwrap().pop()),
                        Event::Free => drop(held.lock().unwrap().pop()),
                    }
                }
            }
            widths[step].store(width, Ordering::SeqCst);
            tenants[step].store(runtime.active_tenants(), Ordering::SeqCst);
        }
        let mut core = thread;
        while core < n_cores {
            // SAFETY: striding keeps every schedule core of a superstep
            // on one thread, and elastic width changes only land between
            // supersteps — the barrier executor's ownership argument.
            unsafe { solve_cell(l, b, shared.0, r, compiled.cell(step, core)) };
            core += width;
        }
    });
    drop(lease);
    drop(joined);
    drop(held);
    drop(me);
    Trajectory {
        widths: widths.iter().map(|w| w.load(Ordering::SeqCst)).collect(),
        tenants: tenants.iter().map(|t| t.load(Ordering::SeqCst)).collect(),
    }
}

/// The shared operand: a wavefront schedule has one superstep per level
/// (21 for this grid), so scripts have room for several resize events.
fn problem(cores: usize) -> (CsrMatrix, CompiledSchedule, Vec<f64>) {
    let l = grid2d_laplacian(12, 10, Stencil2D::FivePoint, 0.5).lower_triangle().unwrap();
    let dag = SolveDag::from_lower_triangular(&l);
    let s = WavefrontScheduler.schedule(&dag, cores);
    let compiled = CompiledSchedule::from_schedule(&s);
    let b: Vec<f64> = (0..l.n_rows()).map(|i| 1.0 + ((i * 7) % 13) as f64).collect();
    (l, compiled, b)
}

/// Expected width sequence: `points` are `(from_step, width)` changes.
fn staircase(n_steps: usize, points: &[(usize, usize)]) -> Vec<usize> {
    let mut widths = vec![0; n_steps];
    for &(from, width) in points {
        for w in widths.iter_mut().skip(from) {
            *w = width;
        }
    }
    widths
}

/// The three scripted trajectories of the acceptance harness: grow-only,
/// shrink-only, and mixed shrink-then-regrow. Each returns the runtime
/// capacity, grant policy, blocker count, script, and the exact expected
/// width staircase.
#[allow(clippy::type_complexity)]
fn acceptance_trajectories(
    n_steps: usize,
) -> Vec<(usize, GrantPolicy, usize, Vec<(usize, Event)>, Vec<usize>)> {
    vec![
        // Grow-only: admitted at 3 of 6 behind three blockers; one core
        // frees at step 1 (width 4 from step 2), two more at step 3
        // (width 6 from step 4).
        (
            6,
            GrantPolicy::Greedy,
            3,
            vec![(1, Event::Free), (3, Event::Free), (3, Event::Free)],
            staircase(n_steps, &[(0, 3), (2, 4), (4, 6)]),
        ),
        // Shrink-only: admitted alone at full width 6; a join at step 1
        // halves the fair share (ceil(6/2) = 3 from step 2), a second
        // join at step 3 cuts it to ceil(6/3) = 2 from step 4.
        (
            6,
            GrantPolicy::Fair,
            0,
            vec![(1, Event::Join), (3, Event::Join)],
            staircase(n_steps, &[(0, 6), (2, 3), (4, 2)]),
        ),
        // Mixed: shrink at the join, regrow to full width at the leave —
        // the cores shed at the 1→2 boundary were reclaimed at 2→3, so
        // the 3→4 boundary finds them free and recruits them back.
        (
            6,
            GrantPolicy::Fair,
            0,
            vec![(1, Event::Join), (3, Event::Leave)],
            staircase(n_steps, &[(0, 6), (2, 3), (4, 6)]),
        ),
    ]
}

#[test]
fn scripted_trajectories_pin_widths_and_bits_single_rhs() {
    let (l, compiled, b) = problem(6);
    let n = l.n_rows();
    let mut reference = vec![0.0; n];
    solve_lower_serial(&l, &b, &mut reference);
    for (i, (capacity, grant, blockers, script, expected)) in
        acceptance_trajectories(compiled.n_supersteps()).into_iter().enumerate()
    {
        let runtime = SolverRuntime::new(capacity);
        let mut x = vec![f64::NAN; n];
        let t =
            run_scripted(&runtime, &l, &b, &mut x, 1, &compiled, grant, blockers, true, &script);
        assert_eq!(t.widths, expected, "trajectory {i} widths diverged");
        assert_eq!(x, reference, "trajectory {i} changed the bits");
        assert_eq!(runtime.cores_in_use(), 0, "trajectory {i} leaked cores");
        assert_eq!(runtime.active_tenants(), 0, "trajectory {i} leaked tenants");
    }
}

#[test]
fn scripted_trajectories_pin_widths_and_bits_multi_rhs() {
    let (l, compiled, b1) = problem(6);
    let n = l.n_rows();
    let r = 3;
    let b: Vec<f64> = (0..n * r).map(|i| (i as f64 * 0.31).sin() + b1[i / r]).collect();
    let mut reference = vec![0.0; n * r];
    solve_lower_multi_serial(&l, &b, &mut reference, r);
    for (i, (capacity, grant, blockers, script, expected)) in
        acceptance_trajectories(compiled.n_supersteps()).into_iter().enumerate()
    {
        let runtime = SolverRuntime::new(capacity);
        let mut x = vec![f64::NAN; n * r];
        let t =
            run_scripted(&runtime, &l, &b, &mut x, r, &compiled, grant, blockers, true, &script);
        assert_eq!(t.widths, expected, "multi-RHS trajectory {i} widths diverged");
        assert_eq!(x, reference, "multi-RHS trajectory {i} changed the bits");
        assert_eq!(runtime.cores_in_use(), 0);
    }
}

#[test]
fn shrink_off_trajectories_are_grow_only_byte_for_byte() {
    // The same shrink-provoking scripts with `shrink` disabled must
    // reproduce the pre-shrink grow-only behavior exactly: the width
    // never decreases, whatever the share does.
    let (l, compiled, b) = problem(6);
    let n = l.n_rows();
    let mut reference = vec![0.0; n];
    solve_lower_serial(&l, &b, &mut reference);
    let n_steps = compiled.n_supersteps();
    for (capacity, grant, blockers, script, _) in acceptance_trajectories(n_steps) {
        let runtime = SolverRuntime::new(capacity);
        let mut x = vec![f64::NAN; n];
        let t =
            run_scripted(&runtime, &l, &b, &mut x, 1, &compiled, grant, blockers, false, &script);
        for s in 1..n_steps {
            assert!(
                t.widths[s] >= t.widths[s - 1],
                "grow-only trajectory narrowed at step {s}: {:?}",
                t.widths
            );
        }
        assert_eq!(x, reference);
        assert_eq!(runtime.cores_in_use(), 0);
    }
}

#[test]
fn two_socket_topology_grows_local_and_sheds_remote_first() {
    // Injected two-socket topology (cores 0..4 on socket 0, 4..8 on
    // socket 1; worker w runs on core w + 1). A four-core blocker pins
    // socket 0, so the solve's grant lands whole on socket 1. When the
    // blocker frees, growth takes the one local core first and recruits
    // the remote three only because no local ones remain; when a joiner
    // halves the share, the shed releases exactly those cross-socket
    // recruits — the lease ends where it started, on one socket.
    let (l, compiled, b) = problem(8);
    let n = l.n_rows();
    let mut reference = vec![0.0; n];
    solve_lower_serial(&l, &b, &mut reference);
    let runtime = SolverRuntime::with_topology(Topology::uniform(2, 4));
    assert_eq!(runtime.capacity(), 8);
    let me = runtime.register_tenant();
    let blocker = Mutex::new(Some(runtime.lease(4)));
    assert_eq!(
        blocker.lock().unwrap().as_ref().unwrap().sockets(),
        vec![0],
        "the blocker grant should fit socket 0 exactly"
    );
    let joined: Mutex<Vec<TenantRegistration>> = Mutex::new(Vec::new());
    let mut lease = runtime.lease_with(8, GrantPolicy::Fair);
    // Two transient tenants: ceil(8/2) = 4, all on socket 1.
    assert_eq!(lease.size(), 4);
    assert_eq!(lease.sockets(), vec![1], "a fitting grant spanned sockets");
    let n_steps = compiled.n_supersteps();
    let n_cores = compiled.n_cores();
    let widths: Vec<AtomicUsize> = (0..n_steps).map(|_| AtomicUsize::new(0)).collect();
    let mut x = vec![f64::NAN; n];
    let shared = ShareX(x.as_mut_ptr());
    let shared = &shared;
    lease.run_supersteps(
        Backoff::Spin,
        n_steps,
        Some(ElasticGrowth { grant: GrantPolicy::Fair, max_width: 8, shrink: true }),
        &|thread, width, step| {
            if thread == 0 {
                if step == 1 {
                    drop(blocker.lock().unwrap().take());
                }
                if step == 3 {
                    joined.lock().unwrap().push(runtime.register_tenant());
                }
                widths[step].store(width, Ordering::SeqCst);
            }
            let mut core = thread;
            while core < n_cores {
                // SAFETY: as in `run_scripted`.
                unsafe { solve_cell(&l, &b, shared.0, 1, compiled.cell(step, core)) };
                core += width;
            }
        },
    );
    let widths: Vec<usize> = widths.iter().map(|w| w.load(Ordering::SeqCst)).collect();
    assert_eq!(widths, staircase(n_steps, &[(0, 4), (2, 8), (4, 4)]));
    assert_eq!(x, reference, "topology trajectory changed the bits");
    // The shrink shed the socket-0 recruits first: what remains is the
    // original single-socket grant.
    assert_eq!(lease.size(), 4);
    assert_eq!(lease.sockets(), vec![1], "the shed migrated the lease across sockets");
    drop(lease);
    drop(joined);
    drop(me);
    assert_eq!(runtime.cores_in_use(), 0);
    assert_eq!(runtime.active_tenants(), 0);
}

#[test]
fn random_matrices_and_schedulers_stay_bit_identical_and_capped() {
    // The property sweep: random operands x every registered scheduler x
    // a churny scripted trajectory. Along every trajectory the solution
    // stays bit-identical to serial, and the published width never
    // exceeds the fair grant cap at the tenant count of the previous
    // step (the boundary that set the width saw those tenants).
    const CAPACITY: usize = 5;
    let script =
        [(0, Event::Join), (1, Event::Join), (2, Event::Leave), (3, Event::Free), (5, Event::Free)];
    for seed in 0..3u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let l = sptrsv::sparse::gen::erdos_renyi_lower(80, 0.08, &mut rng);
        let n = l.n_rows();
        let dag = SolveDag::from_lower_triangular(&l);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 11 + seed as usize) % 17) as f64).collect();
        let mut reference = vec![0.0; n];
        solve_lower_serial(&l, &b, &mut reference);
        let runtime = SolverRuntime::new(CAPACITY);
        for (which, info) in registry::list().iter().enumerate() {
            let sched = registry::resolve(info.name, &dag, CAPACITY)
                .unwrap_or_else(|e| panic!("`{}` failed to build: {e}", info.name));
            let compiled = CompiledSchedule::from_schedule(&sched.schedule(&dag, CAPACITY));
            // Alternate single- and multi-RHS to cover both superstep
            // executors' striding shape.
            let r = 1 + which % 2;
            let bm: Vec<f64> = (0..n * r).map(|i| b[i / r] + (i % r) as f64).collect();
            let mut rm = vec![0.0; n * r];
            solve_lower_multi_serial(&l, &bm, &mut rm, r);
            let mut x = vec![f64::NAN; n * r];
            let t = run_scripted(
                &runtime,
                &l,
                &bm,
                &mut x,
                r,
                &compiled,
                GrantPolicy::Fair,
                2,
                true,
                &script,
            );
            assert_eq!(x, rm, "{} (seed {seed}, r {r}) changed the bits", info.name);
            for (s, &w) in t.widths.iter().enumerate() {
                assert!(w >= 1, "{}: published width 0 at step {s}", info.name);
                if s > 0 {
                    let cap = CAPACITY.div_ceil(t.tenants[s - 1].max(1)).max(1);
                    assert!(
                        w <= cap,
                        "{}: width {w} at step {s} exceeds fair cap {cap} \
                         ({} tenants): {:?}",
                        info.name,
                        t.tenants[s - 1],
                        t.widths
                    );
                }
            }
            assert_eq!(runtime.cores_in_use(), 0, "{} leaked cores", info.name);
            assert_eq!(runtime.active_tenants(), 0, "{} leaked tenants", info.name);
        }
    }
}
