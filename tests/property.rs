//! Property-based tests of the workspace's core invariants.
//!
//! Random lower-triangular matrices (Erdős–Rényi and narrow-band, seeded
//! through proptest) drive the invariants the paper's correctness rests on:
//! Definition 2.1 validity for every scheduler, Proposition 4.3 acyclicity of
//! funnel coarsening, equivalence of all executors with the serial kernel,
//! and permutation round-trips.
//!
//! The scheduler set under test comes from `sptrsv_core::registry` — the
//! registry conformance suite runs **every** registered spec (names and
//! parameterized examples) over randomized Erdős–Rényi and grid-Laplacian
//! DAGs, asserting `Schedule::validate` and that `CompiledSchedule`
//! round-trips to identical cell contents.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sptrsv::core::registry::{self, Backoff, ExecModel, RegistryError, SchedulerSpec, SyncPolicy};
use sptrsv::core::CompiledSchedule;
use sptrsv::dag::coarsen::{coarsen, funnel_partition, is_funnel, FunnelDirection, FunnelOptions};
use sptrsv::dag::{is_acyclic, transitive::approximate_transitive_reduction};
use sptrsv::exec::verify::deviation_from_serial;
use sptrsv::prelude::*;

/// A random lower-triangular operand: ER with the given density, or a
/// narrow-band matrix when `band` is set.
fn random_lower(seed: u64, n: usize, density: f64, band: Option<f64>) -> CsrMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    match band {
        Some(b) => sptrsv::sparse::gen::narrow_band_lower(n, density.max(0.01), b, &mut rng),
        None => sptrsv::sparse::gen::erdos_renyi_lower(n, density, &mut rng),
    }
}

/// A grid-Laplacian operand with an application-like (block-shuffled)
/// numbering — the other structural extreme from the random matrices.
fn random_grid_lower(seed: u64, w: usize, h: usize) -> CsrMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let a = grid2d_laplacian(w, h, Stencil2D::FivePoint, 0.5);
    let block = (w * h / 16).clamp(2, 32);
    let p = sptrsv::sparse::gen::block_shuffle_permutation(a.n_rows(), block, &mut rng);
    a.symmetric_permute(&p).expect("square").lower_triangle().expect("square")
}

/// Registry conformance for one DAG: every registered spec must schedule it
/// validly, and the compiled layout must round-trip to the nested cells.
fn assert_registry_conformance(dag: &SolveDag, cores: usize) -> Result<(), TestCaseError> {
    for info in registry::list() {
        for spec in info.examples {
            let sched = registry::resolve(spec, dag, cores)
                .unwrap_or_else(|e| panic!("spec `{spec}` failed to build: {e}"));
            let s = sched.schedule(dag, cores);
            prop_assert!(
                s.validate(dag).is_ok(),
                "`{spec}` produced an invalid schedule (n={}, cores={cores})",
                dag.n()
            );
            let compiled = CompiledSchedule::from_schedule(&s);
            prop_assert_eq!(compiled.n_cores(), s.n_cores());
            prop_assert_eq!(compiled.n_supersteps(), s.n_supersteps());
            prop_assert!(
                compiled.to_cells() == s.cells(),
                "`{spec}`: CompiledSchedule does not round-trip to Schedule::cells()"
            );
            // The flat order is a permutation of all vertices.
            let mut seen = vec![false; dag.n()];
            for &v in compiled.vertex_order() {
                prop_assert!(!seen[v as usize], "vertex {v} appears twice in the compiled order");
                seen[v as usize] = true;
            }
            prop_assert!(seen.iter().all(|&x| x), "compiled order misses vertices");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // v2 grammar conformance: random specs assembled from every registry
    // entry's declared parameters (nested `gl.` scopes included) and an
    // optional `@model` suffix must round-trip parse → `Display` → parse
    // to the identical spec, and build whenever the model is supported.
    #[test]
    fn v2_spec_grammar_round_trips_over_the_registry(
        entry_pick in any::<u64>(),
        param_mask in any::<u64>(),
        model_pick in 0u64..4,
    ) {
        let entries = registry::list();
        let entry = &entries[(entry_pick % entries.len() as u64) as usize];
        let mut spec = SchedulerSpec::new(entry.name);
        for (i, p) in entry.params.iter().enumerate() {
            if param_mask & (1 << (i % 64)) != 0 {
                spec = spec.with(p.key, p.default);
            }
        }
        if model_pick > 0 {
            spec = spec.with_model(ExecModel::ALL[(model_pick - 1) as usize]);
        }
        let text = spec.to_string();
        let reparsed: SchedulerSpec = text.parse().expect("rendered specs are grammatical");
        prop_assert_eq!(&reparsed, &spec, "parse(display(spec)) != spec for `{}`", text);
        prop_assert_eq!(reparsed.to_string(), text);
        // Resolution consistency: the model resolves iff supported, and the
        // spec builds a scheduler under that model.
        let g = SolveDag::from_edges(4, &[(0, 1), (1, 3), (2, 3)], vec![1; 4]);
        match spec.exec_model() {
            Some(m) if !entry.exec_models.contains(&m) => {
                prop_assert!(matches!(
                    registry::resolve_model(&spec),
                    Err(RegistryError::UnsupportedModel { .. })
                ));
            }
            _ => {
                let resolved = registry::resolve_model(&spec).expect("supported model");
                prop_assert_eq!(resolved, spec.exec_model().unwrap_or(entry.default_model()));
                prop_assert!(registry::build(&spec, &g, 2).is_ok(), "`{}` failed to build", text);
            }
        }
    }

    // Execution-policy keys (`sync=full|reduced`, `backoff=spin|yield`)
    // compose with every registry entry and an optional `@model` suffix:
    // the spec stays grammatical, resolves the right policy, and builds —
    // while bad backoff values are rejected on every scheduler.
    #[test]
    fn exec_policy_keys_compose_with_every_scheduler(
        entry_pick in any::<u64>(),
        sync_pick in 0u64..3,
        backoff_pick in 0u64..3,
        with_model in any::<bool>(),
    ) {
        let entries = registry::list();
        let entry = &entries[(entry_pick % entries.len() as u64) as usize];
        let mut params = Vec::new();
        let sync = [None, Some(SyncPolicy::Full), Some(SyncPolicy::Reduced)][sync_pick as usize];
        let backoff = [None, Some(Backoff::Spin), Some(Backoff::Yield)][backoff_pick as usize];
        if let Some(s) = sync {
            params.push(format!("sync={s}"));
        }
        if let Some(b) = backoff {
            params.push(format!("backoff={b}"));
        }
        let mut text = entry.name.to_string();
        if !params.is_empty() {
            text = format!("{text}:{}", params.join(","));
        }
        if with_model {
            text = format!("{text}@{}", entry.default_model());
        }
        let spec: SchedulerSpec = text.parse().expect("policy specs are grammatical");
        let policy = registry::resolve_exec_policy(&spec).expect("valid policy keys");
        prop_assert_eq!(policy.sync, sync.unwrap_or_default());
        prop_assert_eq!(policy.backoff, backoff.unwrap_or_default());
        let g = SolveDag::from_edges(4, &[(0, 1), (1, 3), (2, 3)], vec![1; 4]);
        prop_assert!(registry::build(&spec, &g, 2).is_ok(), "`{}` failed to build", text);
        // Round trip: the rendered spec re-parses to the same policy.
        let reparsed: SchedulerSpec = spec.to_string().parse().expect("round trip");
        prop_assert_eq!(registry::resolve_exec_policy(&reparsed).expect("round trip"), policy);
        // Bad backoff values fail on every scheduler.
        let bad = format!("{}:backoff=banana", entry.name);
        prop_assert!(matches!(
            registry::resolve(&bad, &g, 2),
            Err(RegistryError::BadValue { key: "backoff", .. })
        ), "`{}` was not rejected", bad);
    }

    // Unknown scopes and unknown models never parse-and-build: scoped keys
    // outside the declared parameter set are `UnknownParam`, model names
    // outside `ExecModel::ALL` are `UnknownModel`.
    #[test]
    fn v2_spec_unknown_scopes_and_models_rejected(
        entry_pick in any::<u64>(),
        scope_pick in 0u64..3,
    ) {
        let entries = registry::list();
        let entry = &entries[(entry_pick % entries.len() as u64) as usize];
        let scope = ["bogus", "inner", "zz"][(scope_pick % 3) as usize];
        let g = SolveDag::from_edges(2, &[(0, 1)], vec![1; 2]);
        let scoped = format!("{}:{scope}.alpha=8", entry.name);
        prop_assert!(matches!(
            registry::resolve(&scoped, &g, 2),
            Err(RegistryError::UnknownParam { .. })
        ), "`{}` was not rejected", scoped);
        let bad_model = format!("{}@{scope}", entry.name);
        prop_assert!(matches!(
            bad_model.parse::<SchedulerSpec>(),
            Err(RegistryError::UnknownModel { .. })
        ), "`{}` was not rejected", bad_model);
    }

    #[test]
    fn registry_conformance_on_erdos_renyi(
        seed in any::<u64>(),
        n in 2usize..120,
        density in 0.0f64..0.25,
        cores in 1usize..6,
    ) {
        let l = random_lower(seed, n, density, None);
        let dag = SolveDag::from_lower_triangular(&l);
        assert_registry_conformance(&dag, cores)?;
    }

    #[test]
    fn registry_conformance_on_grid_laplacians(
        seed in any::<u64>(),
        w in 3usize..14,
        h in 3usize..14,
        cores in 1usize..6,
    ) {
        let l = random_grid_lower(seed, w, h);
        let dag = SolveDag::from_lower_triangular(&l);
        assert_registry_conformance(&dag, cores)?;
    }

    #[test]
    fn executors_match_serial(
        seed in any::<u64>(),
        n in 2usize..120,
        density in 0.0f64..0.3,
    ) {
        let l = random_lower(seed, n, density, None);
        let dag = SolveDag::from_lower_triangular(&l);
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).sin() + 1.5).collect();
        let s = GrowLocal::new().schedule(&dag, 3);
        let mut x = vec![0.0; n];
        solve_with_barriers(&l, &s, &b, &mut x).expect("valid schedule");
        prop_assert!(deviation_from_serial(&l, &b, &x) < 1e-9);
    }

    #[test]
    fn solve_into_is_identical_to_solve(
        seed in any::<u64>(),
        n in 2usize..100,
        density in 0.0f64..0.2,
    ) {
        use sptrsv::exec::PlanBuilder;
        let l = random_lower(seed, n, density, None);
        let plan = PlanBuilder::new(&l).cores(3).build().expect("valid plan");
        let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64 - 1.5).collect();
        let mut ws = plan.workspace();
        let mut x = vec![0.0; n];
        plan.solve_into(&b, &mut x, &mut ws);
        prop_assert_eq!(x, plan.solve(&b));
    }

    #[test]
    fn funnel_parts_are_funnels_and_coarse_graph_acyclic(
        seed in any::<u64>(),
        n in 1usize..100,
        density in 0.0f64..0.3,
        cap in 1u64..64,
        out_direction in any::<bool>(),
    ) {
        let l = random_lower(seed, n, density, None);
        let dag = SolveDag::from_lower_triangular(&l);
        let direction =
            if out_direction { FunnelDirection::Out } else { FunnelDirection::In };
        let opts = FunnelOptions { direction, max_part_weight: cap };
        let partition = funnel_partition(&dag, &opts);
        // Partition covers every vertex exactly once.
        let mut seen = vec![false; n];
        for part in &partition.parts {
            for &v in part {
                prop_assert!(!seen[v], "vertex {v} in two parts");
                seen[v] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Definition 4.4 per part (checked on small instances only — the
        // checker is quadratic).
        if n <= 60 {
            for part in &partition.parts {
                prop_assert!(
                    is_funnel(&dag, part, direction),
                    "non-funnel part {part:?}"
                );
            }
        }
        // Proposition 4.3.
        let coarse = coarsen(&dag, &partition);
        prop_assert!(is_acyclic(&coarse));
        prop_assert_eq!(coarse.total_weight(), dag.total_weight());
    }

    #[test]
    fn transitive_reduction_preserves_levels(
        seed in any::<u64>(),
        n in 1usize..150,
        density in 0.0f64..0.3,
    ) {
        let l = random_lower(seed, n, density, None);
        let dag = SolveDag::from_lower_triangular(&l);
        let reduced = approximate_transitive_reduction(&dag);
        prop_assert!(reduced.n_edges() <= dag.n_edges());
        prop_assert_eq!(wavefronts(&dag).level, wavefronts(&reduced).level);
    }

    #[test]
    fn narrow_band_schedules_and_solves(
        seed in any::<u64>(),
        n in 10usize..200,
        band in 2.0f64..20.0,
    ) {
        let l = random_lower(seed, n, 0.2, Some(band));
        let dag = SolveDag::from_lower_triangular(&l);
        let s = GrowLocal::new().schedule(&dag, 4);
        prop_assert!(s.validate(&dag).is_ok());
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        solve_with_barriers(&l, &s, &b, &mut x).expect("valid");
        prop_assert!(deviation_from_serial(&l, &b, &x) < 1e-9);
    }

    #[test]
    fn reordering_preserves_triangularity_and_solution(
        seed in any::<u64>(),
        n in 2usize..120,
        density in 0.0f64..0.25,
    ) {
        let l = random_lower(seed, n, density, None);
        let dag = SolveDag::from_lower_triangular(&l);
        let s = GrowLocal::new().schedule(&dag, 3);
        let r = reorder_for_locality(&l, &s).expect("topological");
        prop_assert!(r.matrix.is_lower_triangular());
        prop_assert!(r.matrix.has_nonzero_diagonal());
        let new_dag = SolveDag::from_lower_triangular(&r.matrix);
        prop_assert!(r.schedule.validate(&new_dag).is_ok());
        // Solutions agree through the permutation.
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 9) as f64).collect();
        let mut x = vec![0.0; n];
        solve_with_barriers(&l, &s, &b, &mut x).expect("valid");
        let pb = r.permutation.apply_vec(&b);
        let mut px = vec![0.0; n];
        solve_with_barriers(&r.matrix, &r.schedule, &pb, &mut px).expect("valid");
        let x_back = r.permutation.apply_inverse_vec(&px);
        for (a, bb) in x.iter().zip(&x_back) {
            prop_assert!((a - bb).abs() < 1e-9);
        }
    }

    #[test]
    fn permutation_roundtrip(
        seed in any::<u64>(),
        n in 1usize..200,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = sptrsv::sparse::gen::block_shuffle_permutation(n, 7, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y = p.apply_vec(&x);
        prop_assert_eq!(p.apply_inverse_vec(&y), x);
        prop_assert!(p.compose(&p.inverse()).is_identity());
    }

    #[test]
    fn schedule_stats_are_consistent(
        seed in any::<u64>(),
        n in 1usize..150,
        density in 0.0f64..0.2,
        cores in 1usize..5,
    ) {
        let l = random_lower(seed, n, density, None);
        let dag = SolveDag::from_lower_triangular(&l);
        let s = GrowLocal::new().schedule(&dag, cores);
        let stats = s.stats(&dag);
        prop_assert_eq!(stats.total_work, dag.total_weight());
        prop_assert!(stats.critical_work <= stats.total_work);
        prop_assert!(stats.critical_work * (cores as u64) >= stats.total_work);
        let eff = stats.work_efficiency(cores);
        prop_assert!(eff > 0.0 && eff <= 1.0 + 1e-12);
    }
}
