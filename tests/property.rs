//! Property-based tests of the workspace's core invariants.
//!
//! Random lower-triangular matrices (Erdős–Rényi and narrow-band, seeded
//! through proptest) drive the invariants the paper's correctness rests on:
//! Definition 2.1 validity for every scheduler, Proposition 4.3 acyclicity of
//! funnel coarsening, equivalence of all executors with the serial kernel,
//! and permutation round-trips.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sptrsv::dag::coarsen::{coarsen, funnel_partition, is_funnel, FunnelDirection, FunnelOptions};
use sptrsv::dag::{is_acyclic, transitive::approximate_transitive_reduction};
use sptrsv::exec::verify::deviation_from_serial;
use sptrsv::prelude::*;

/// A random lower-triangular operand: ER with the given density, or a
/// narrow-band matrix when `band` is set.
fn random_lower(seed: u64, n: usize, density: f64, band: Option<f64>) -> CsrMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    match band {
        Some(b) => sptrsv::sparse::gen::narrow_band_lower(n, density.max(0.01), b, &mut rng),
        None => sptrsv::sparse::gen::erdos_renyi_lower(n, density, &mut rng),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_schedulers_produce_valid_schedules(
        seed in any::<u64>(),
        n in 2usize..160,
        density in 0.0f64..0.25,
        cores in 1usize..6,
    ) {
        let l = random_lower(seed, n, density, None);
        let dag = SolveDag::from_lower_triangular(&l);
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(GrowLocal::new()),
            Box::new(WavefrontScheduler),
            Box::new(HDagg::default()),
            Box::new(SpMp),
            Box::new(BspG::default()),
            Box::new(BlockParallel::new(3)),
            Box::new(FunnelGrowLocal::for_dag(&dag, cores)),
        ];
        for sched in schedulers {
            let s = sched.schedule(&dag, cores);
            prop_assert!(
                s.validate(&dag).is_ok(),
                "{} invalid: n={n} density={density} cores={cores} seed={seed}",
                sched.name()
            );
        }
    }

    #[test]
    fn executors_match_serial(
        seed in any::<u64>(),
        n in 2usize..120,
        density in 0.0f64..0.3,
    ) {
        let l = random_lower(seed, n, density, None);
        let dag = SolveDag::from_lower_triangular(&l);
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).sin() + 1.5).collect();
        let s = GrowLocal::new().schedule(&dag, 3);
        let mut x = vec![0.0; n];
        solve_with_barriers(&l, &s, &b, &mut x).expect("valid schedule");
        prop_assert!(deviation_from_serial(&l, &b, &x) < 1e-9);
    }

    #[test]
    fn funnel_parts_are_funnels_and_coarse_graph_acyclic(
        seed in any::<u64>(),
        n in 1usize..100,
        density in 0.0f64..0.3,
        cap in 1u64..64,
        out_direction in any::<bool>(),
    ) {
        let l = random_lower(seed, n, density, None);
        let dag = SolveDag::from_lower_triangular(&l);
        let direction =
            if out_direction { FunnelDirection::Out } else { FunnelDirection::In };
        let opts = FunnelOptions { direction, max_part_weight: cap };
        let partition = funnel_partition(&dag, &opts);
        // Partition covers every vertex exactly once.
        let mut seen = vec![false; n];
        for part in &partition.parts {
            for &v in part {
                prop_assert!(!seen[v], "vertex {v} in two parts");
                seen[v] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Definition 4.4 per part (checked on small instances only — the
        // checker is quadratic).
        if n <= 60 {
            for part in &partition.parts {
                prop_assert!(
                    is_funnel(&dag, part, direction),
                    "non-funnel part {part:?}"
                );
            }
        }
        // Proposition 4.3.
        let coarse = coarsen(&dag, &partition);
        prop_assert!(is_acyclic(&coarse));
        prop_assert_eq!(coarse.total_weight(), dag.total_weight());
    }

    #[test]
    fn transitive_reduction_preserves_levels(
        seed in any::<u64>(),
        n in 1usize..150,
        density in 0.0f64..0.3,
    ) {
        let l = random_lower(seed, n, density, None);
        let dag = SolveDag::from_lower_triangular(&l);
        let reduced = approximate_transitive_reduction(&dag);
        prop_assert!(reduced.n_edges() <= dag.n_edges());
        prop_assert_eq!(wavefronts(&dag).level, wavefronts(&reduced).level);
    }

    #[test]
    fn narrow_band_schedules_and_solves(
        seed in any::<u64>(),
        n in 10usize..200,
        band in 2.0f64..20.0,
    ) {
        let l = random_lower(seed, n, 0.2, Some(band));
        let dag = SolveDag::from_lower_triangular(&l);
        let s = GrowLocal::new().schedule(&dag, 4);
        prop_assert!(s.validate(&dag).is_ok());
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        solve_with_barriers(&l, &s, &b, &mut x).expect("valid");
        prop_assert!(deviation_from_serial(&l, &b, &x) < 1e-9);
    }

    #[test]
    fn reordering_preserves_triangularity_and_solution(
        seed in any::<u64>(),
        n in 2usize..120,
        density in 0.0f64..0.25,
    ) {
        let l = random_lower(seed, n, density, None);
        let dag = SolveDag::from_lower_triangular(&l);
        let s = GrowLocal::new().schedule(&dag, 3);
        let r = reorder_for_locality(&l, &s).expect("topological");
        prop_assert!(r.matrix.is_lower_triangular());
        prop_assert!(r.matrix.has_nonzero_diagonal());
        let new_dag = SolveDag::from_lower_triangular(&r.matrix);
        prop_assert!(r.schedule.validate(&new_dag).is_ok());
        // Solutions agree through the permutation.
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 9) as f64).collect();
        let mut x = vec![0.0; n];
        solve_with_barriers(&l, &s, &b, &mut x).expect("valid");
        let pb = r.permutation.apply_vec(&b);
        let mut px = vec![0.0; n];
        solve_with_barriers(&r.matrix, &r.schedule, &pb, &mut px).expect("valid");
        let x_back = r.permutation.apply_inverse_vec(&px);
        for (a, bb) in x.iter().zip(&x_back) {
            prop_assert!((a - bb).abs() < 1e-9);
        }
    }

    #[test]
    fn permutation_roundtrip(
        seed in any::<u64>(),
        n in 1usize..200,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = sptrsv::sparse::gen::block_shuffle_permutation(n, 7, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y = p.apply_vec(&x);
        prop_assert_eq!(p.apply_inverse_vec(&y), x);
        prop_assert!(p.compose(&p.inverse()).is_identity());
    }

    #[test]
    fn schedule_stats_are_consistent(
        seed in any::<u64>(),
        n in 1usize..150,
        density in 0.0f64..0.2,
        cores in 1usize..5,
    ) {
        let l = random_lower(seed, n, density, None);
        let dag = SolveDag::from_lower_triangular(&l);
        let s = GrowLocal::new().schedule(&dag, cores);
        let stats = s.stats(&dag);
        prop_assert_eq!(stats.total_work, dag.total_weight());
        prop_assert!(stats.critical_work <= stats.total_work);
        prop_assert!(stats.critical_work * (cores as u64) >= stats.total_work);
        let eff = stats.work_efficiency(cores);
        prop_assert!(eff > 0.0 && eff <= 1.0 + 1e-12);
    }
}
