//! Warm-start integration tests: the serialization subsystem's end-to-end
//! guarantees across the whole registry.
//!
//! * save → load → solve is **bit-identical** to the cold plan for every
//!   registered scheduler × every execution model it supports (and over
//!   randomized operands, spec parameters and core counts via proptest);
//! * a `plan_cache` directory shared by many schedulers serves each its
//!   own plan (fingerprints never collide across specs in practice);
//! * `SolvePlan::with_new_values` matches a cold build of the new matrix
//!   bit-for-bit for every scheduler;
//! * every way a plan file can rot — truncation at each line, corruption
//!   of each line, version skew, wrong matrix, wrong flags, empty or
//!   garbage bytes — surfaces as an **error**, never as a solution.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sptrsv::core::registry;
use sptrsv::core::{PlanCache, SerializeError};
use sptrsv::exec::{CacheOutcome, PlanBuilder, PlanError};
use sptrsv::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// A per-test scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("sptrsv-warmstart-it").join(name);
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    dir
}

/// The standing operand: a §6.2-shaped grid Laplacian lower triangle,
/// small enough to sweep the full registry quickly.
fn operand() -> CsrMatrix {
    grid2d_laplacian(20, 17, Stencil2D::FivePoint, 0.5).lower_triangle().unwrap()
}

/// A right-hand side with enough structure to catch permutation bugs.
fn rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 + ((i * 7) % 13) as f64 - 6.0).collect()
}

/// Same structure as `l`, different values (diagonal kept nonzero).
fn rescaled(l: &CsrMatrix) -> CsrMatrix {
    CsrMatrix::from_raw(
        l.n_rows(),
        l.n_cols(),
        l.row_ptr().to_vec(),
        l.col_idx().to_vec(),
        l.values().iter().map(|v| v * 1.75 - 0.125).collect(),
    )
    .unwrap()
}

#[test]
fn save_load_solve_is_bit_identical_for_every_scheduler_and_model() {
    let l = operand();
    let b = rhs(l.n_rows());
    let dir = scratch("save-load-sweep");
    for info in registry::list() {
        for &model in info.exec_models {
            let path = dir.join(format!("{}-{model}.plan", info.name));
            let cold = PlanBuilder::new(&l)
                .scheduler(info.name)
                .cores(3)
                .execution(model)
                .build()
                .unwrap();
            cold.save(&path).unwrap();
            let loaded = PlanBuilder::new(&l)
                .scheduler(info.name)
                .cores(3)
                .execution(model)
                .load_plan(&path)
                .build()
                .unwrap();
            assert_eq!(
                loaded.cache_outcome(),
                CacheOutcome::DiskHit,
                "{}@{model} did not load from its file",
                info.name
            );
            assert_eq!(
                cold.solve(&b),
                loaded.solve(&b),
                "{}@{model}: loaded plan diverged from the cold plan",
                info.name
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn one_cache_directory_serves_every_scheduler_its_own_plan() {
    let l = operand();
    let b = rhs(l.n_rows());
    let dir = scratch("shared-dir");
    // Round 1: every scheduler stores under its own fingerprint.
    let mut expected = Vec::new();
    for info in registry::list() {
        let cold =
            PlanBuilder::new(&l).scheduler(info.name).cores(3).plan_cache(&dir).build().unwrap();
        assert_eq!(cold.cache_outcome(), CacheOutcome::Miss, "{}", info.name);
        expected.push((info.name, cold.solve(&b)));
    }
    // Round 2: every scheduler hits its own file, never a neighbor's.
    for (name, x) in &expected {
        let warm = PlanBuilder::new(&l).scheduler(*name).cores(3).plan_cache(&dir).build().unwrap();
        assert_eq!(warm.cache_outcome(), CacheOutcome::DiskHit, "{name}");
        assert_eq!(&warm.solve(&b), x, "{name}: disk hit diverged");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn memory_cache_hits_are_bit_identical_for_every_scheduler() {
    let l = operand();
    let b = rhs(l.n_rows());
    let cache = Arc::new(PlanCache::new(registry::list().len()));
    for info in registry::list() {
        let cold =
            PlanBuilder::new(&l).scheduler(info.name).cores(3).cached(&cache).build().unwrap();
        assert_eq!(cold.cache_outcome(), CacheOutcome::Miss, "{}", info.name);
        let warm =
            PlanBuilder::new(&l).scheduler(info.name).cores(3).cached(&cache).build().unwrap();
        assert_eq!(warm.cache_outcome(), CacheOutcome::MemoryHit, "{}", info.name);
        assert_eq!(cold.solve(&b), warm.solve(&b), "{}: memory hit diverged", info.name);
    }
    assert_eq!(cache.len(), registry::list().len(), "one entry per scheduler identity");
}

#[test]
fn with_new_values_matches_a_cold_build_for_every_scheduler() {
    let l = operand();
    let scaled = rescaled(&l);
    let b = rhs(l.n_rows());
    for info in registry::list() {
        let plan = PlanBuilder::new(&l).scheduler(info.name).cores(3).build().unwrap();
        let rebound = plan.with_new_values(&scaled).unwrap();
        let direct = PlanBuilder::new(&scaled).scheduler(info.name).cores(3).build().unwrap();
        assert_eq!(
            rebound.solve(&b),
            direct.solve(&b),
            "{}: with_new_values != cold build of the new matrix",
            info.name
        );
    }
}

#[test]
fn every_way_a_plan_file_rots_is_an_error_never_an_answer() {
    let l = operand();
    let dir = scratch("corruption");
    let path = dir.join("victim.plan");
    let plan = PlanBuilder::new(&l).cores(3).build().unwrap();
    plan.save(&path).unwrap();
    let pristine = std::fs::read_to_string(&path).unwrap();
    let load = |p: &PathBuf| PlanBuilder::new(&l).cores(3).load_plan(p).build();

    // The pristine file loads (sanity for everything below).
    assert!(load(&path).is_ok());

    let lines: Vec<&str> = pristine.lines().collect();
    // Truncate after every prefix length: always an error.
    for keep in 0..lines.len() {
        std::fs::write(&path, lines[..keep].join("\n")).unwrap();
        assert!(
            matches!(load(&path), Err(PlanError::Cache(_))),
            "file truncated to {keep} of {} lines must not load",
            lines.len()
        );
    }
    // Mutate every line that carries a digit: the checksum (or a header
    // parse, or the fingerprint comparison) must catch each one — no
    // single-line edit may load. The `key` line is the one exception: it
    // is advisory text, the fingerprint is the authoritative binding.
    for (i, line) in lines.iter().enumerate() {
        if line.starts_with("key ") {
            continue;
        }
        let Some(d) = line.chars().find(|c| c.is_ascii_digit()) else { continue };
        let flipped = if d == '9' { '3' } else { char::from(d as u8 + 1) };
        let mut copy = lines.clone();
        let edited = line.replacen(d, &flipped.to_string(), 1);
        copy[i] = &edited;
        std::fs::write(&path, copy.join("\n")).unwrap();
        assert!(
            matches!(load(&path), Err(PlanError::Cache(_))),
            "edited line {i} (`{line}`) must not load"
        );
    }
    // Version skew is its own error (so formats can evolve loudly).
    std::fs::write(&path, pristine.replacen("v3", "v9", 1)).unwrap();
    assert!(matches!(load(&path), Err(PlanError::Cache(SerializeError::Version { .. }))));
    // A plan for the wrong matrix, or the wrong build flags, is a
    // fingerprint mismatch — the file itself is intact.
    std::fs::write(&path, &pristine).unwrap();
    let other = grid2d_laplacian(13, 13, Stencil2D::FivePoint, 0.5).lower_triangle().unwrap();
    assert!(matches!(
        PlanBuilder::new(&other).cores(3).load_plan(&path).build(),
        Err(PlanError::Cache(SerializeError::FingerprintMismatch { .. }))
    ));
    assert!(matches!(
        PlanBuilder::new(&l).cores(2).load_plan(&path).build(),
        Err(PlanError::Cache(SerializeError::FingerprintMismatch { .. }))
    ));
    assert!(matches!(
        PlanBuilder::new(&l).cores(3).reorder(false).load_plan(&path).build(),
        Err(PlanError::Cache(SerializeError::FingerprintMismatch { .. }))
    ));
    // Empty and garbage files.
    std::fs::write(&path, "").unwrap();
    assert!(matches!(load(&path), Err(PlanError::Cache(_))));
    std::fs::write(&path, "definitely not a plan\n\u{1F980}\n").unwrap();
    assert!(matches!(load(&path), Err(PlanError::Cache(_))));
    // A missing file is an IO error, not a panic.
    assert!(load(&dir.join("never-written.plan")).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Randomized round trip: a random ER operand, a random registry
    // example spec and a random core count must save → load → solve
    // bit-identically, and a values-only change on the same structure
    // must still hit the cache and match a cold build exactly.
    #[test]
    fn random_plans_round_trip_through_disk_and_memory(
        seed in any::<u64>(),
        entry_pick in any::<u64>(),
        cores in 1usize..5,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 24 + (seed % 40) as usize;
        let l = sptrsv::sparse::gen::erdos_renyi_lower(n, 0.12, &mut rng);
        let entries = registry::list();
        let entry = &entries[(entry_pick % entries.len() as u64) as usize];
        // Alternate between the bare name and its parameterized examples.
        let specs: Vec<&str> = std::iter::once(entry.name).chain(entry.examples.iter().copied()).collect();
        let spec = specs[(entry_pick / 7 % specs.len() as u64) as usize];
        let b = rhs(n);

        let dir = scratch(&format!("prop-{seed}-{entry_pick}-{cores}"));
        let path = dir.join("round-trip.plan");
        let cold = PlanBuilder::new(&l).scheduler(spec).cores(cores).build().unwrap();
        let x = cold.solve(&b);
        cold.save(&path).unwrap();
        let loaded = PlanBuilder::new(&l)
            .scheduler(spec)
            .cores(cores)
            .load_plan(&path)
            .build()
            .unwrap();
        prop_assert_eq!(loaded.cache_outcome(), CacheOutcome::DiskHit);
        prop_assert_eq!(&loaded.solve(&b), &x, "`{}` loaded plan diverged", spec);

        // Values-only change: memory hit, and exact agreement with a
        // from-scratch build of the new matrix.
        let cache = Arc::new(PlanCache::new(2));
        let scaled = rescaled(&l);
        PlanBuilder::new(&l).scheduler(spec).cores(cores).cached(&cache).build().unwrap();
        let warm = PlanBuilder::new(&scaled)
            .scheduler(spec)
            .cores(cores)
            .cached(&cache)
            .build()
            .unwrap();
        prop_assert_eq!(warm.cache_outcome(), CacheOutcome::MemoryHit);
        let direct = PlanBuilder::new(&scaled).scheduler(spec).cores(cores).build().unwrap();
        prop_assert_eq!(
            &warm.solve(&b),
            &direct.solve(&b),
            "`{}` rebound hit diverged from a cold build",
            spec
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
