//! Kernel-layer integration tests: supernode/dense-block detection
//! round-trips, and the `fastmath=on` execution policy agrees with the
//! exact path to the documented `1e-12` relative tolerance across every
//! registered scheduler × execution model on the §6.2 suites.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sptrsv::core::kernel::{DenseBlock, KernelOp, KernelPlan};
use sptrsv::core::registry;
use sptrsv::core::CompiledSchedule;
use sptrsv::prelude::*;

/// A random lower-triangular operand (ER, or narrow-band when `band` set).
fn random_lower(seed: u64, n: usize, density: f64, band: Option<f64>) -> CsrMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    match band {
        Some(b) => sptrsv::sparse::gen::narrow_band_lower(n, density.max(0.01), b, &mut rng),
        None => sptrsv::sparse::gen::erdos_renyi_lower(n, density, &mut rng),
    }
}

/// Asserts the plan's ops tile every cell of `compiled` exactly: walking
/// each cell's ops covers each of its row positions exactly once, in order,
/// with `Dense` ops anchored at their block's first row. Returns the total
/// number of rows covered.
fn assert_plan_tiles(l: &CsrMatrix, compiled: &CompiledSchedule, plan: &KernelPlan) -> usize {
    let mut covered = 0usize;
    let mut seen = vec![false; l.n_rows()];
    for step in 0..compiled.n_supersteps() {
        for core in 0..compiled.n_cores() {
            let cell = compiled.cell(step, core);
            let mut cursor = 0usize;
            for op in plan.cell_ops(step, core) {
                match *op {
                    KernelOp::Scalar { start, len } | KernelOp::Unrolled { start, len, .. } => {
                        assert_eq!(start as usize, cursor, "op out of order in cell");
                        cursor += len as usize;
                        assert!(len > 0, "empty run emitted");
                    }
                    KernelOp::Dense { block } => {
                        let blk = &plan.blocks()[block as usize];
                        assert_eq!(
                            cell[cursor], blk.first,
                            "dense op not anchored at its block's first row"
                        );
                        for (k, &row) in cell[cursor..cursor + blk.rows as usize].iter().enumerate()
                        {
                            assert_eq!(
                                row as usize,
                                blk.first as usize + k,
                                "block rows not consecutive"
                            );
                        }
                        cursor += blk.rows as usize;
                    }
                }
            }
            assert_eq!(cursor, cell.len(), "ops do not tile the cell");
            for &row in cell {
                assert!(!seen[row as usize], "row {row} covered twice");
                seen[row as usize] = true;
                covered += 1;
            }
        }
    }
    assert!(seen.iter().all(|&s| s), "plan misses rows");
    covered
}

/// Asserts a packed block reproduces the CSR rows exactly: every panel
/// entry equals the matching CSR coefficient, zero where the CSR row has no
/// entry, and every CSR entry of the block's rows lands in a panel slot.
fn assert_block_round_trips(l: &CsrMatrix, blk: &DenseBlock) {
    let rows = blk.rows as usize;
    let first = blk.first as usize;
    for i in 0..rows {
        let (cols, vals) = l.row(first + i);
        let mut csr_entries = 0usize;
        // Off-block panel: the coefficient of union column `cols[c]`.
        for (ci, &uc) in blk.cols.iter().enumerate() {
            let packed = blk.off[ci * rows + i];
            match cols.binary_search(&(uc as usize)) {
                Ok(k) => {
                    assert_eq!(packed, vals[k], "off panel differs at ({}, {uc})", first + i);
                    csr_entries += 1;
                }
                Err(_) => {
                    assert_eq!(packed, 0.0, "zero padding corrupted at ({}, {uc})", first + i)
                }
            }
        }
        // In-block panel (lower triangle incl. diagonal).
        for j in 0..rows {
            let packed = blk.diag[j * rows + i];
            if j > i {
                assert_eq!(packed, 0.0, "upper triangle of diag panel must be zero");
                continue;
            }
            match cols.binary_search(&(first + j)) {
                Ok(k) => {
                    assert_eq!(
                        packed,
                        vals[k],
                        "diag panel differs at ({}, {})",
                        first + i,
                        first + j
                    );
                    csr_entries += 1;
                }
                Err(_) => assert_eq!(packed, 0.0, "diag zero padding corrupted"),
            }
        }
        assert_eq!(csr_entries, cols.len(), "CSR entries of row {} not all packed", first + i);
    }
}

/// Full detection round-trip for one operand under one schedule.
fn assert_detection_round_trips(l: &CsrMatrix, cores: usize) {
    let dag = SolveDag::from_lower_triangular(l);
    let schedule = GrowLocal::new().schedule(&dag, cores);
    let compiled = CompiledSchedule::from_schedule(&schedule);
    let plan = KernelPlan::detect(l, &compiled);
    assert_eq!(assert_plan_tiles(l, &compiled, &plan), l.n_rows());
    for blk in plan.blocks() {
        assert_block_round_trips(l, blk);
    }
    // The reciprocals are exactly 1/diagonal, bitwise.
    for i in 0..l.n_rows() {
        let (_, vals) = l.row(i);
        assert_eq!(plan.inv_diag()[i], 1.0 / vals[vals.len() - 1], "inv_diag[{i}]");
    }
    // The serial plan (one cell, natural order) round-trips too.
    let serial = KernelPlan::detect_serial(l);
    for blk in serial.blocks() {
        assert_block_round_trips(l, blk);
    }
    assert_eq!(serial.n_rows(), l.n_rows());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Block detection round-trips on random operands: the kernel plan
    // covers every row exactly once and packed dense blocks reproduce the
    // CSR coefficients (zero padding included).
    #[test]
    fn block_detection_round_trips_on_random_operands(
        seed in any::<u64>(),
        n in 2usize..140,
        density in 0.0f64..0.3,
        cores in 1usize..6,
        banded in any::<bool>(),
        band in 2.0f64..16.0,
    ) {
        let l = random_lower(seed, n, density, banded.then_some(band));
        assert_detection_round_trips(&l, cores);
    }

    // The same invariants on the structured extremes. Supernodal operands
    // (dense blocks over a shared parent set) are where detection must
    // actually fire; tridiagonal bundles are where the cost guard must
    // decline — packing them would inflate the arithmetic.
    #[test]
    fn block_detection_round_trips_on_supernodal_operands(
        blocks in 2usize..20,
        block_size in 4usize..12,
        couplings in 0usize..4,
        cores in 1usize..6,
    ) {
        let l = sptrsv::sparse::gen::supernodal_spd(blocks, block_size, couplings, 0.5)
            .lower_triangle()
            .expect("square SPD");
        assert_detection_round_trips(&l, cores);
        let plan = KernelPlan::detect_serial(&l);
        prop_assert!(plan.dense_coverage() > 0.5, "supernodal operands must detect dense blocks");
        let bundle = sptrsv::sparse::gen::block_diagonal_spd(blocks, block_size, 0.5)
            .lower_triangle()
            .expect("square SPD");
        prop_assert_eq!(
            KernelPlan::detect_serial(&bundle).blocks().len(),
            0,
            "chained bundles must stay scalar"
        );
    }
}

#[test]
fn fastmath_agrees_with_exact_path_on_every_suite_scheduler_and_model() {
    // The documented fastmath contract: for every §6.2 suite, every
    // registered scheduler and every execution model it supports, the
    // `fastmath=on` solution agrees with the same plan's exact
    // (`fastmath=off`) solution to 1e-12 relative tolerance — and repeated
    // fastmath solves are bit-stable.
    use sptrsv::exec::PlanBuilder;
    for kind in SuiteKind::all() {
        let suite = load_suite(kind, Scale::Test, 3);
        let ds = &suite[0];
        let n = ds.lower.n_rows();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 13) % 17) as f64 / 7.0).collect();
        for info in registry::list() {
            for &model in info.exec_models {
                let spec = format!("{}@{model}", info.name);
                let exact = PlanBuilder::new(&ds.lower)
                    .scheduler(&spec)
                    .cores(4)
                    .build()
                    .unwrap_or_else(|e| panic!("`{spec}`: {e}"))
                    .solve(&b);
                let plan = PlanBuilder::new(&ds.lower)
                    .scheduler(&spec)
                    .cores(4)
                    .fastmath(true)
                    .build()
                    .unwrap_or_else(|e| panic!("`{spec}` fastmath: {e}"));
                assert!(plan.exec_policy().fastmath);
                let x = plan.solve(&b);
                let scale = exact.iter().fold(1.0f64, |m, v| m.max(v.abs()));
                let err = x.iter().zip(&exact).fold(0.0f64, |m, (a, e)| m.max((a - e).abs()));
                assert!(
                    err / scale < 1e-12,
                    "`{spec}` fastmath on {} ({kind:?}): relative deviation {:.3e}",
                    ds.name,
                    err / scale
                );
                // Repeated fastmath solves are bit-stable on one plan.
                let mut ws = plan.workspace();
                let mut again = vec![f64::NAN; n];
                plan.solve_into(&b, &mut again, &mut ws);
                let reference = again.clone();
                again.fill(f64::NAN);
                plan.solve_into(&b, &mut again, &mut ws);
                assert_eq!(again, reference, "`{spec}` fastmath nondeterministic on {}", ds.name);
            }
        }
    }
}

#[test]
fn fastmath_multi_rhs_agrees_column_by_column() {
    let suite = load_suite(SuiteKind::SuiteSparse, Scale::Test, 13);
    let ds = &suite[0];
    let n = ds.lower.n_rows();
    let r = 3;
    use sptrsv::exec::{ExecModel, PlanBuilder};
    for model in ExecModel::ALL {
        let plan =
            PlanBuilder::new(&ds.lower).cores(4).execution(model).fastmath(true).build().unwrap();
        let b: Vec<f64> = (0..n * r).map(|i| (i as f64 * 0.17).cos()).collect();
        let x = plan.solve_multi(&b, r);
        for j in 0..r {
            let bj: Vec<f64> = (0..n).map(|i| b[i * r + j]).collect();
            let xj = plan.solve(&bj);
            let scale = xj.iter().fold(1.0f64, |m, v| m.max(v.abs()));
            for i in 0..n {
                assert!(
                    (x[i * r + j] - xj[i]).abs() / scale < 1e-12,
                    "{model} fastmath multi-RHS col {j} row {i}"
                );
            }
        }
    }
}
