//! Transient FEM-style simulation: one sparsity pattern, many solves.
//!
//! ```text
//! cargo run --release --example fem_transient
//! ```
//!
//! Implicit time stepping of a diffusion problem `(I + dt·K) u_{t+1} = u_t`
//! solved with Gauss–Seidel sweeps, whose core is exactly the SpTRSV kernel:
//! the forward sweep is a lower-triangular solve with the matrix `D + L_K`.
//! The mesh (and hence the sparsity pattern) is fixed, so the plan is built
//! once — `PlanBuilder` with a registry spec — and its compiled schedule is
//! amortized over every sweep of every time step, solving through
//! `solve_into` so the steady state allocates nothing. The example reports
//! the measured planning time, the modeled per-solve gain, and the
//! break-even step count (§7.7).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sptrsv::exec::PlanBuilder;
use sptrsv::prelude::*;
use sptrsv::sparse::linalg::{norm2, spmv};
use sptrsv::sparse::CooMatrix;
use std::time::Instant;

fn main() {
    // Stiffness-like operator on a 2D plate, system matrix A = I + dt·K,
    // with an application-like (block-shuffled) node numbering.
    let dt = 0.1;
    let mut rng = SmallRng::seed_from_u64(5);
    let k_mat = grid2d_laplacian(70, 70, Stencil2D::NinePoint, 0.0);
    let renumber = sptrsv::sparse::gen::block_shuffle_permutation(k_mat.n_rows(), 49, &mut rng);
    let k_mat = k_mat.symmetric_permute(&renumber).expect("square");
    let n = k_mat.n_rows();
    let mut coo = CooMatrix::new(n, n);
    for (r, c, v) in k_mat.iter() {
        let v = dt * v + if r == c { 1.0 } else { 0.0 };
        coo.push(r, c, v).expect("in range");
    }
    let a = coo.to_csr();

    // Gauss–Seidel splitting: M = D + L (lower triangle of A).
    let m = a.lower_triangle().expect("square");
    let dag = SolveDag::from_lower_triangular(&m);
    println!(
        "system: {} unknowns, {} non-zeros, avg wavefront {:.1}",
        n,
        a.nnz(),
        average_wavefront_size(&dag)
    );

    // Plan once (timed): schedule + §5 reordering + compiled executor in
    // one call.
    let t0 = Instant::now();
    let plan = PlanBuilder::new(&m).scheduler("growlocal").cores(8).build().expect("valid plan");
    let sched_time = t0.elapsed();
    println!(
        "GrowLocal plan: {} supersteps, built in {:.2} ms",
        plan.schedule().n_supersteps(),
        sched_time.as_secs_f64() * 1e3
    );

    // Time stepping: u_{t+1} solves A u = u_t, approximated by `sweeps`
    // Gauss–Seidel iterations, each one parallel SpTRSV.
    let mut u: Vec<f64> = (0..n).map(|i| if i == n / 2 { 100.0 } else { 0.0 }).collect();
    let steps = 20;
    let sweeps = 4;
    let mut solves = 0usize;
    let mut workspace = plan.workspace();
    let mut d = vec![0.0; n];
    for step in 0..steps {
        let rhs = u.clone();
        // Gauss–Seidel: u <- u + M^{-1}(rhs - A u).
        for _ in 0..sweeps {
            let mut au = vec![0.0; n];
            spmv(&a, &u, &mut au);
            let residual: Vec<f64> = rhs.iter().zip(&au).map(|(b, ax)| b - ax).collect();
            // Solve M d = residual (the plan gathers/scatters internally).
            plan.solve_into(&residual, &mut d, &mut workspace);
            for (ui, di) in u.iter_mut().zip(&d) {
                *ui += di;
            }
            solves += 1;
        }
        if step % 5 == 0 {
            let mut au = vec![0.0; n];
            spmv(&a, &u, &mut au);
            let r: Vec<f64> = rhs.iter().zip(&au).map(|(b, ax)| b - ax).collect();
            println!("  step {step:2}: ||r|| = {:.3e}, energy {:.3}", norm2(&r), norm2(&u));
        }
    }
    println!("{solves} parallel triangular solves executed with one compiled plan");

    // Amortization: modeled gain per solve vs measured planning cost
    // (`plan.simulate` runs the machine model on the plan's own compiled
    // layout, under the plan's execution model).
    let profile = MachineProfile::intel_xeon_22();
    let serial = simulate_serial(&m, &profile);
    let par = plan.simulate(&profile);
    let gain_cycles = serial.cycles - par.cycles;
    if gain_cycles > 0.0 {
        let sched_cycles = sched_time.as_secs_f64() * 2.5e9;
        println!(
            "modeled speed-up {:.2}x; planning amortizes after {:.1} solves \
             (this run used {solves})",
            par.speedup_over(&serial),
            sched_cycles / gain_cycles
        );
    }
}
