//! Multi-tenant serving: many plans solving concurrently on one shared
//! `SolverRuntime`, under greedy and fair/elastic core leasing.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```
//!
//! The production regime the runtime redesign targets: a service holds
//! many prepared plans (one per tenant/system) and solves them from many
//! request threads at once. All plans lease their threads per solve from
//! **one** runtime sized to the machine, so N concurrent solves never
//! oversubscribe the hardware — when the runtime is busy, a solve runs on
//! fewer cores (down to serial) with bit-identical results, and the cores
//! return the moment it finishes.
//!
//! The serve loop runs twice to demo the `grant=`/`elastic=` execution
//! policy:
//!
//! * **greedy** (the default): each grant takes everything free — the
//!   first tenant in can hold the whole runtime while the others wait;
//! * **fair + elastic**: grants are capped at the fair share
//!   `ceil(capacity / active tenants)` so tenants run side by side, and
//!   a solve admitted narrow *grows at superstep boundaries* as
//!   neighbors release cores.
//!
//! Correctness never depends on the policy: every solve is bit-identical
//! to its single-tenant reference under both.

use sptrsv::exec::{GrantPolicy, PlanBuilder, SolverRuntime};
use sptrsv::prelude::*;
use std::sync::Arc;

fn main() {
    // One runtime for the whole process. `SolverRuntime::global()` (the
    // default when `PlanBuilder::runtime` is not called) is sized to the
    // hardware; here an explicit 4-core runtime keeps the demo
    // deterministic on any machine.
    let runtime = Arc::new(SolverRuntime::new(4));
    println!("runtime: {} cores (shared by every tenant)", runtime.capacity());

    // Three tenants with different systems and scheduling pipelines.
    let tenants: Vec<(&str, CsrMatrix)> = vec![
        ("fem-plate", grid2d_laplacian(60, 60, Stencil2D::NinePoint, 0.5)),
        ("reservoir", grid3d_laplacian(12, 12, 12, Stencil3D::SevenPoint, 0.5)),
        ("heat-2d", grid2d_laplacian(90, 40, Stencil2D::FivePoint, 0.5)),
    ];
    let specs = ["growlocal@barrier", "spmp@async", "funnel-gl:cap=auto@barrier"];

    for (policy_label, grant, elastic) in [
        ("grant=greedy (default)", GrantPolicy::Greedy, false),
        ("grant=fair, elastic=on", GrantPolicy::Fair, true),
    ] {
        println!("\n=== serving under {policy_label} ===");
        let plans: Vec<_> = tenants
            .iter()
            .zip(specs)
            .map(|((name, a), spec)| {
                let l = a.lower_triangle().expect("square SPD operand");
                let plan = PlanBuilder::new(&l)
                    .scheduler(spec)
                    .cores(4) // each tenant *wants* the whole machine…
                    .runtime(Arc::clone(&runtime)) // …but shares this one
                    .grant_policy(grant)
                    .elastic(elastic)
                    .build()
                    .expect("valid plan");
                let b: Vec<f64> = (0..l.n_rows()).map(|i| 1.0 + (i % 9) as f64).collect();
                let expected = plan.solve(&b);
                (*name, l, plan, b, expected)
            })
            .collect();

        // Serve: every tenant solves repeatedly from its own request
        // thread. Leases contend for the 4 cores; under fair/elastic the
        // widths are re-split across tenants and grow back mid-solve.
        std::thread::scope(|scope| {
            for (name, l, plan, b, expected) in &plans {
                let runtime = Arc::clone(&runtime);
                scope.spawn(move || {
                    let mut ws = plan.workspace();
                    let mut x = vec![0.0; b.len()];
                    let rounds = 200;
                    let mut worst = 0.0f64;
                    let started = std::time::Instant::now();
                    for _ in 0..rounds {
                        let t0 = std::time::Instant::now();
                        plan.solve_into(b, &mut x, &mut ws);
                        worst = worst.max(t0.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(&x, expected, "{name}: concurrency changed the bits");
                    }
                    let per_solve = started.elapsed().as_secs_f64() / rounds as f64 * 1e3;
                    let residual = sptrsv::sparse::linalg::relative_residual(l, &x, b);
                    println!(
                        "{name:>10}: {rounds} solves, {per_solve:.3} ms/solve (worst {worst:.3} ms), \
                         residual {residual:.2e} (runtime load seen: {}/{} cores, {} tenants)",
                        runtime.cores_in_use(),
                        runtime.capacity(),
                        runtime.active_tenants(),
                    );
                });
            }
        });
        assert_eq!(runtime.cores_in_use(), 0, "all leases returned");
    }
    println!("\nall tenants served; runtime idle again (0/{} cores leased)", runtime.capacity());
}
