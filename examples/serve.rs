//! Solve-as-a-service: two plans behind batching [`SolveServer`]s, many
//! concurrent clients, one shared `SolverRuntime`.
//!
//! ```text
//! cargo run --release --example serve
//! ```
//!
//! The closed-loop serving regime: a process holds one prepared plan per
//! system and many request threads submit single right-hand sides. Each
//! plan's [`SolveServer`] queues the submissions and a batcher thread
//! fuses up to `batch=N` of them into **one** multi-RHS solve — one
//! dispatch, one core lease and one matrix traversal serve a whole batch,
//! so per-request overhead is amortized exactly like the paper amortizes
//! scheduling cost across repeated solves. Fusion changes grouping, never
//! arithmetic: every response is bit-identical to solving that request
//! alone, and every client below checks it.
//!
//! The demo prints, per server, the achieved batch-width histogram (how
//! much amortization the offered concurrency actually bought) and each
//! client's p99 latency.

use sptrsv::exec::{PlanBuilder, SolverRuntime};
use sptrsv::prelude::*;
use std::sync::Arc;

/// `q`-th percentile (0..=1) of an unsorted latency sample, in ms.
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx]
}

fn main() {
    // One runtime for the whole process; both servers' fused solves lease
    // from it, so serving two plans never oversubscribes the machine.
    let runtime = Arc::new(SolverRuntime::new(4));

    // Two tenants: a 2D FEM plate and a 3D reservoir, each behind its own
    // server. `batch=` / `batch_wait_us=` are ordinary execution-policy
    // keys, so the serving shape rides the scheduler spec.
    let systems: Vec<(&str, CsrMatrix, &str)> = vec![
        (
            "fem-plate",
            grid2d_laplacian(60, 60, Stencil2D::NinePoint, 0.5),
            "growlocal:batch=8,batch_wait_us=150",
        ),
        (
            "reservoir",
            grid3d_laplacian(12, 12, 12, Stencil3D::SevenPoint, 0.5),
            "spmp:batch=4,batch_wait_us=150@async",
        ),
    ];
    let servers: Vec<(&str, Arc<SolveServer>)> = systems
        .iter()
        .map(|(name, a, spec)| {
            let l = a.lower_triangle().expect("square SPD operand");
            let plan = PlanBuilder::new(&l)
                .scheduler(*spec)
                .cores(2)
                .runtime(Arc::clone(&runtime))
                .build()
                .expect("valid plan");
            let server = SolveServer::builder(plan).admission(Admission::Block).start();
            println!(
                "{name:>10}: serving {} rows under {spec} (batch={}, linger {} us, depth {})",
                l.n_rows(),
                server.max_batch(),
                server.batch_wait().as_micros(),
                server.queue_depth()
            );
            (*name, Arc::new(server))
        })
        .collect();

    // Six clients per server submit closed-loop: redeem, perturb, resubmit
    // the same buffer (the response hands it back solved in place).
    let clients = 6;
    let rounds = 100;
    println!("\n{clients} clients x {rounds} requests against each server:");
    std::thread::scope(|scope| {
        for (name, server) in &servers {
            for client in 0..clients {
                let server = Arc::clone(server);
                scope.spawn(move || {
                    let n = server.plan().internal_matrix().n_rows();
                    let mut b: Vec<f64> =
                        (0..n).map(|i| ((i * 7 + client * 13) % 19) as f64 - 9.0).collect();
                    let mut latencies = Vec::with_capacity(rounds);
                    let mut widths = 0usize;
                    for round in 0..rounds {
                        let expected = server.plan().solve(&b);
                        let response = server.submit(b).expect("blocking admission").wait();
                        assert_eq!(response.x, expected, "{name} client {client}: bits changed");
                        latencies.push(response.timing.total.as_secs_f64() * 1e3);
                        widths += response.timing.batch_width;
                        b = response.x;
                        for v in &mut b {
                            *v = (*v * 3.0 + round as f64).rem_euclid(17.0) - 8.0;
                        }
                    }
                    println!(
                        "{name:>10} client {client}: p99 {:.3} ms, mean width ridden {:.2}",
                        percentile(&mut latencies, 0.99),
                        widths as f64 / rounds as f64
                    );
                });
            }
        }
    });

    println!();
    for (name, server) in servers {
        let stats = Arc::into_inner(server).expect("all clients done").shutdown();
        let histogram: Vec<String> = stats
            .widths
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(width, count)| format!("{width}x{count}"))
            .collect();
        println!(
            "{name:>10}: {} requests in {} batches, mean width {:.2} (by width: {})",
            stats.completed,
            stats.batches,
            stats.mean_width(),
            histogram.join(" ")
        );
        assert_eq!(stats.completed, clients * rounds);
    }
    assert_eq!(runtime.cores_in_use(), 0, "all leases returned");
    println!("both servers drained; runtime idle again");
}
