//! Kernel-plan coverage report: what the supernode/dense-block detection
//! actually finds on each generator family and §6.2 suite.
//!
//! ```text
//! cargo run --release --example kernels
//! ```
//!
//! For every operand this prints the natural-order kernel plan's
//! composition — how many rows execute as packed dense blocks, how many as
//! lane-unrolled long rows, and how many stay on the reciprocal scalar
//! kernel — plus the block count and mean block size. The cost guard is
//! deliberately conservative (see `sptrsv_core::kernel`): supernodal
//! operands should be almost fully blocked, chained bundles and stencils
//! should stay scalar, and wide random rows should go unrolled. The
//! `kernels` Criterion bench measures that each of these outcomes is the
//! profitable one.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sptrsv::core::kernel::KernelPlan;
use sptrsv::prelude::*;
use sptrsv::sparse::gen::{erdos_renyi_lower, narrow_band_lower};

/// Prints one operand's plan composition.
fn report(name: &str, l: &CsrMatrix) {
    let plan = KernelPlan::detect_serial(l);
    let n = plan.n_rows();
    let dense = plan.dense_rows();
    let unrolled = plan.unrolled_rows();
    let scalar = n - dense - unrolled;
    let blocks = plan.blocks().len();
    let mean = if blocks == 0 { 0.0 } else { dense as f64 / blocks as f64 };
    println!(
        "{name:<26} {n:>6} rows  {:>5.1}% dense  {:>5.1}% unrolled  {:>5.1}% scalar  ({blocks} blocks, mean size {mean:.1})",
        100.0 * dense as f64 / n as f64,
        100.0 * unrolled as f64 / n as f64,
        100.0 * scalar as f64 / n as f64,
    );
}

fn main() {
    println!("generator families:");
    let mut rng = SmallRng::seed_from_u64(7);
    report(
        "supernodal_spd(64,8,2)",
        &supernodal_spd(64, 8, 2, 0.5).lower_triangle().expect("square"),
    );
    report(
        "block_diagonal_spd(64,8)",
        &block_diagonal_spd(64, 8, 0.5).lower_triangle().expect("square"),
    );
    report(
        "grid2d 5pt 48x48",
        &grid2d_laplacian(48, 48, Stencil2D::FivePoint, 0.5).lower_triangle().expect("square"),
    );
    report(
        "grid2d 9pt 48x48",
        &grid2d_laplacian(48, 48, Stencil2D::NinePoint, 0.5).lower_triangle().expect("square"),
    );
    report(
        "grid3d 27pt 13^3",
        &grid3d_laplacian(13, 13, 13, Stencil3D::TwentySevenPoint, 0.5)
            .lower_triangle()
            .expect("square"),
    );
    report("erdos_renyi(900,0.12)", &erdos_renyi_lower(900, 0.12, &mut rng));
    report("narrow_band(2000,b10)", &narrow_band_lower(2000, 0.14, 10.0, &mut rng));

    println!();
    println!("§6.2 suites (test scale):");
    for kind in SuiteKind::all() {
        let suite = load_suite(kind, Scale::Test, 3);
        let ds = &suite[0];
        report(&format!("{kind:?}/{}", ds.name), &ds.lower);
    }
}
