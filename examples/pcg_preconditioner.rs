//! Preconditioned conjugate gradients with an IC(0) preconditioner.
//!
//! ```text
//! cargo run --release --example pcg_preconditioner
//! ```
//!
//! This is the workload the paper's introduction motivates: every PCG
//! iteration applies the preconditioner `M = L·Lᵀ` by one forward and one
//! backward triangular solve with a *fixed* sparsity pattern, so the
//! GrowLocal schedule is computed once and reused hundreds of times
//! (amortization, §7.7).
//!
//! The backward solve `Lᵀ y = z` is run through the same parallel executor
//! by conjugating with the reversal permutation: if `J` is the
//! index-reversing permutation, `J·Lᵀ·J` is again lower triangular, so one
//! scheduler and one executor cover both sweeps.

use sptrsv::core::schedule::Schedule;
use sptrsv::exec::barrier::BarrierExecutor;
use sptrsv::prelude::*;
use sptrsv::sparse::factor::{ichol0, IcholOptions};
use sptrsv::sparse::linalg::{axpy, dot, norm2, spmv};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A parallel triangular-solve operator: matrix + schedule + executor.
struct ParallelSolve {
    matrix: CsrMatrix,
    executor: BarrierExecutor,
}

impl ParallelSolve {
    fn plan(lower: CsrMatrix, n_cores: usize) -> ParallelSolve {
        let dag = SolveDag::from_lower_triangular(&lower);
        let schedule = GrowLocal::new().schedule(&dag, n_cores);
        let executor = BarrierExecutor::new(&lower, &schedule).expect("valid schedule");
        ParallelSolve { matrix: lower, executor }
    }

    fn solve(&self, b: &[f64], x: &mut [f64]) {
        self.executor.solve(&self.matrix, b, x);
    }
}

fn main() {
    // SPD system: 3D 7-point Laplacian (a pressure-solve stand-in) with an
    // application-like node numbering (locally contiguous blocks in random
    // order — a lexicographic numbering has a single DAG source, which no
    // real mesh exhibits).
    let mut rng = SmallRng::seed_from_u64(3);
    let a = grid3d_laplacian(20, 20, 20, Stencil3D::SevenPoint, 0.05);
    let renumber =
        sptrsv::sparse::gen::block_shuffle_permutation(a.n_rows(), 64, &mut rng);
    let a = a.symmetric_permute(&renumber).expect("square");
    let n = a.n_rows();
    println!("A: {} rows, {} non-zeros", n, a.nnz());

    // IC(0) factor and the two solve operators.
    let l = ichol0(&a, &IcholOptions::default()).expect("diagonally dominant");
    let forward = ParallelSolve::plan(l.clone(), 8);

    // Backward solve via reversal conjugation: J·Lᵀ·J is lower triangular.
    let reversal = Permutation::from_old_of_new((0..n).rev().collect()).expect("bijection");
    let lt_reversed =
        l.transpose().symmetric_permute(&reversal).expect("square");
    assert!(lt_reversed.is_lower_triangular());
    let backward = ParallelSolve::plan(lt_reversed, 8);

    // Apply M⁻¹ r: forward solve, then reversed backward solve.
    let apply_preconditioner = |r: &[f64]| -> Vec<f64> {
        let mut y = vec![0.0; n];
        forward.solve(r, &mut y);
        let yr = reversal.apply_vec(&y);
        let mut zr = vec![0.0; n];
        backward.solve(&yr, &mut zr);
        reversal.apply_inverse_vec(&zr)
    };

    // PCG on A x = b.
    let b: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) / 5.0).collect();
    let mut x = vec![0.0; n];
    let mut r = b.clone();
    let mut z = apply_preconditioner(&r);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let nb = norm2(&b);
    let mut iterations = 0;
    for it in 0..500 {
        iterations = it + 1;
        let mut ap = vec![0.0; n];
        spmv(&a, &p, &mut ap);
        let alpha = rz / dot(&p, &ap);
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rel = norm2(&r) / nb;
        if it % 10 == 0 {
            println!("  iter {it:3}: relative residual {rel:.3e}");
        }
        if rel < 1e-10 {
            break;
        }
        z = apply_preconditioner(&r);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
    }
    let rel = sptrsv::sparse::linalg::relative_residual(&a, &x, &b);
    println!("PCG converged in {iterations} iterations, final relative residual {rel:.3e}");
    assert!(rel < 1e-8, "PCG failed to converge");
    println!(
        "preconditioner applications: {} (2 triangular solves each) — \
         one schedule, reused every time",
        iterations + 1
    );

    // How many solves pay off the scheduling time? (Table 7.6's question.)
    let dag = SolveDag::from_lower_triangular(&l);
    let schedule = GrowLocal::new().schedule(&dag, 8);
    let _ = Schedule::n_supersteps(&schedule);
    let profile = MachineProfile::intel_xeon_22();
    let serial = simulate_serial(&l, &profile);
    let par = simulate_barrier(&l, &schedule, &profile);
    println!(
        "modeled per-solve speed-up {:.2}x on {}",
        par.speedup_over(&serial),
        profile.name
    );
}
