//! Preconditioned conjugate gradients with an IC(0) preconditioner.
//!
//! ```text
//! cargo run --release --example pcg_preconditioner
//! ```
//!
//! This is the workload the paper's introduction motivates: every PCG
//! iteration applies the preconditioner `M = L·Lᵀ` by one forward and one
//! backward triangular solve with a *fixed* sparsity pattern, so the
//! schedule is computed once and reused hundreds of times (amortization,
//! §7.7).
//!
//! Scheduler selection is handed to the auto-tuner: `PlanBuilder::auto`
//! (the `sptrsv-tune` entry point) extracts the factor's features, prunes
//! the registry's (scheduler, model) pairs, ranks the survivors by modeled
//! cycles, and builds the winner — no scheduler name appears in this file.
//!
//! Both sweeps go through `PlanBuilder`: the forward solve plans `L` as a
//! lower operand, the backward solve plans `Lᵀ` as an *upper* operand (the
//! plan conjugates with the index-reversal permutation internally, §2.2).
//! Solves run through `solve_into` with reusable workspaces, so the steady
//! state of the PCG loop performs no heap allocation inside the
//! preconditioner.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sptrsv::exec::{Orientation, PlanBuilder};
use sptrsv::prelude::*;
use sptrsv::sparse::factor::{ichol0, IcholOptions};
use sptrsv::sparse::linalg::{axpy, dot, norm2, spmv};

fn main() {
    // SPD system: 3D 7-point Laplacian (a pressure-solve stand-in) with an
    // application-like node numbering (locally contiguous blocks in random
    // order — a lexicographic numbering has a single DAG source, which no
    // real mesh exhibits).
    let mut rng = SmallRng::seed_from_u64(3);
    let a = grid3d_laplacian(20, 20, 20, Stencil3D::SevenPoint, 0.05);
    let renumber = sptrsv::sparse::gen::block_shuffle_permutation(a.n_rows(), 64, &mut rng);
    let a = a.symmetric_permute(&renumber).expect("square");
    let n = a.n_rows();
    println!("A: {} rows, {} non-zeros", n, a.nnz());

    // IC(0) factor and the two solve plans (one schedule each, computed
    // once, reused by every preconditioner application). The forward plan
    // lets the tuner pick the (scheduler, model) pair from the factor's
    // structure; the backward sweep solves the transpose, whose internal
    // lower operand has the same structure mirrored, so the same winning
    // spec is reused rather than tuned twice.
    let l = ichol0(&a, &IcholOptions::default()).expect("diagonally dominant");
    let lt = l.transpose();
    let tune_report = Tuner::new(&l).cores(8).run().expect("tuning a well-formed factor");
    println!(
        "auto picked: {} ({} candidates scored, {:.1} ms tuning)",
        tune_report.winner,
        tune_report.ranked.len(),
        tune_report.tuning_seconds * 1e3
    );
    let forward = PlanBuilder::new(&l)
        .scheduler(tune_report.winner.to_string())
        .cores(8)
        .build()
        .expect("valid lower plan");
    let backward = PlanBuilder::new(&lt)
        .orientation(Orientation::Upper)
        .scheduler(tune_report.winner.to_string())
        .cores(8)
        .build()
        .expect("valid upper plan");

    // Apply M⁻¹ r: forward solve, then backward solve — allocation-free via
    // per-plan workspaces.
    let mut fwd_ws = forward.workspace();
    let mut bwd_ws = backward.workspace();
    let mut y = vec![0.0; n];
    let mut z = vec![0.0; n];
    let mut apply_preconditioner = |r: &[f64], z: &mut Vec<f64>| {
        forward.solve_into(r, &mut y, &mut fwd_ws);
        backward.solve_into(&y, z, &mut bwd_ws);
    };

    // PCG on A x = b.
    let b: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) / 5.0).collect();
    let mut x = vec![0.0; n];
    let mut r = b.clone();
    apply_preconditioner(&r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let nb = norm2(&b);
    let mut iterations = 0;
    for it in 0..500 {
        iterations = it + 1;
        let mut ap = vec![0.0; n];
        spmv(&a, &p, &mut ap);
        let alpha = rz / dot(&p, &ap);
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rel = norm2(&r) / nb;
        if it % 10 == 0 {
            println!("  iter {it:3}: relative residual {rel:.3e}");
        }
        if rel < 1e-10 {
            break;
        }
        apply_preconditioner(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
    }
    let rel = sptrsv::sparse::linalg::relative_residual(&a, &x, &b);
    println!("PCG converged in {iterations} iterations, final relative residual {rel:.3e}");
    assert!(rel < 1e-8, "PCG failed to converge");
    println!(
        "preconditioner applications: {} (2 triangular solves each) — \
         one schedule per sweep, reused every time",
        iterations + 1
    );

    // How many solves pay off the scheduling time? (Table 7.6's question.)
    // `simulate` runs the machine model on the plan's shared compiled layout.
    let profile = MachineProfile::intel_xeon_22();
    let serial = simulate_serial(&l, &profile);
    let par = forward.simulate(&profile);
    println!(
        "modeled per-solve speed-up {:.2}x on {} ({} supersteps)",
        par.speedup_over(&serial),
        profile.name,
        forward.schedule().n_supersteps()
    );
    // Tuning amortization: the one-off tuner run divided across every
    // triangular solve this PCG run performed.
    let solves = 2 * (iterations + 1);
    println!(
        "tuning cost amortized: {:.1} ms / {} solves = {:.3} ms per solve",
        tune_report.tuning_seconds * 1e3,
        solves,
        tune_report.tuning_seconds * 1e3 / solves as f64
    );
}
