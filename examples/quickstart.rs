//! Quickstart: schedule and solve one sparse triangular system.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small FEM-like SPD matrix, takes its lower triangle, schedules
//! the forward substitution with GrowLocal on 8 cores (resolved through the
//! registry spec grammar), executes it with real threads + barriers,
//! verifies against the serial kernel, and reports the schedule statistics
//! and modeled speed-up. The last step shows the same pipeline through the
//! one-call `PlanBuilder`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sptrsv::core::{registry, CompiledSchedule};
use sptrsv::exec::PlanBuilder;
use sptrsv::prelude::*;

fn main() {
    // 1. An application-like problem: a 2D nine-point stencil with a
    //    block-shuffled (locally contiguous, many-source) numbering.
    let mut rng = SmallRng::seed_from_u64(1);
    let a = grid2d_laplacian(80, 80, Stencil2D::NinePoint, 0.5);
    let perm = sptrsv::sparse::gen::block_shuffle_permutation(a.n_rows(), 48, &mut rng);
    let a = a.symmetric_permute(&perm).expect("square");
    let l = a.lower_triangle().expect("square");
    println!("matrix: {} rows, {} non-zeros (lower triangle)", l.n_rows(), l.nnz());

    // 2. The solve DAG and its parallelism profile.
    let dag = SolveDag::from_lower_triangular(&l);
    let wf = wavefronts(&dag);
    println!(
        "solve DAG: {} wavefronts, average wavefront size {:.1}",
        wf.n_fronts(),
        wf.average_size()
    );

    // 3. Schedule with GrowLocal, resolved from a registry spec — swap the
    //    string for any entry of `registry::list()` (try "funnel-gl:cap=auto"
    //    or "hdagg:balance=1.3").
    let scheduler = registry::resolve("growlocal", &dag, 8).expect("registered");
    let schedule = scheduler.schedule(&dag, 8);
    schedule.validate(&dag).expect("GrowLocal schedules are valid by construction");
    let stats = schedule.stats(&dag);
    println!(
        "{}: {} supersteps ({} barriers), work efficiency {:.2}",
        scheduler.name(),
        schedule.n_supersteps(),
        schedule.n_barriers(),
        stats.work_efficiency(8)
    );

    // 4. Reorder for locality (§5 of the paper) — the permuted system is
    //    equivalent and cache-friendlier.
    let reordered = reorder_for_locality(&l, &schedule).expect("schedule order is topological");

    // 5. Execute with real threads and barriers; verify against serial.
    let n = l.n_rows();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    let pb = reordered.permutation.apply_vec(&b);
    let mut px = vec![0.0; n];
    solve_with_barriers(&reordered.matrix, &reordered.schedule, &pb, &mut px)
        .expect("valid schedule");
    let x = reordered.permutation.apply_inverse_vec(&px);
    let deviation = sptrsv::exec::verify::deviation_from_serial(&l, &b, &x);
    println!("max deviation from serial solve: {deviation:.3e}");
    assert!(deviation < 1e-10);

    // 6. Modeled speed-up on a 22-core machine (this container has 1 core,
    //    so speed-ups are reported by the calibrated machine model).
    let profile = MachineProfile::intel_xeon_22();
    let serial = simulate_serial(&l, &profile);
    let compiled = CompiledSchedule::from_schedule(&reordered.schedule);
    let parallel = simulate_barrier(&reordered.matrix, &compiled, &profile);
    println!(
        "modeled speed-up over serial on {}: {:.2}x",
        profile.name,
        parallel.speedup_over(&serial)
    );

    // 7. Steps 3–5 in one call: the PlanBuilder composes scheduling,
    //    reordering and executor compilation; `solve_into` + a workspace
    //    makes repeated solves allocation-free. The `@model` spec suffix
    //    picks the execution model (try "growlocal@async") and
    //    `plan.simulate` reuses the plan's own compiled layout.
    let plan = PlanBuilder::new(&l).scheduler("growlocal").cores(8).build().expect("valid plan");
    let mut x2 = vec![0.0; n];
    let mut workspace = plan.workspace();
    plan.solve_into(&b, &mut x2, &mut workspace);
    let deviation = sptrsv::exec::verify::deviation_from_serial(&l, &b, &x2);
    println!("PlanBuilder path ({} execution) deviation: {deviation:.3e}", plan.exec_model());
    assert!(deviation < 1e-10);
    let report = plan.simulate(&profile);
    println!("plan.simulate speed-up: {:.2}x", report.speedup_over(&serial));
}
