//! Exploring GrowLocal's parameter space and the baseline schedulers.
//!
//! ```text
//! cargo run --release --example scheduler_tuning
//! ```
//!
//! Sweeps the synchronization-cost parameter `L`, the `α` growth factor and
//! the vertex-selection rule on one hard (narrow-bandwidth) instance, and
//! compares all schedulers on supersteps, balance and modeled cycles —
//! a miniature of the paper's ablation studies.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sptrsv::core::GrowLocalParams;
use sptrsv::prelude::*;

fn describe(name: &str, dag: &SolveDag, matrix: &CsrMatrix, schedule: &sptrsv::core::Schedule) {
    schedule.validate(dag).expect("schedule must be valid");
    let stats = schedule.stats(dag);
    let profile = MachineProfile::intel_xeon_22();
    let serial = simulate_serial(matrix, &profile);
    let par = simulate_barrier(matrix, schedule, &profile);
    println!(
        "{name:<28} supersteps {:>6}  imbalance {:>5.2}  modeled speed-up {:>5.2}x",
        schedule.n_supersteps(),
        stats.average_imbalance(),
        par.speedup_over(&serial)
    );
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(11);
    let l = sptrsv::sparse::gen::narrow_band_lower(30_000, 0.14, 10.0, &mut rng);
    let dag = SolveDag::from_lower_triangular(&l);
    println!(
        "narrow-bandwidth instance: n = {}, nnz = {}, wavefronts = {}\n",
        l.n_rows(),
        l.nnz(),
        wavefronts(&dag).n_fronts()
    );
    let k = 8;

    println!("-- synchronization-cost parameter L (paper default 500) --");
    for sync_cost in [50u64, 500, 5000] {
        let gl = GrowLocal::with_params(GrowLocalParams { sync_cost, ..Default::default() });
        let s = gl.schedule(&dag, k);
        describe(&format!("GrowLocal(L={sync_cost})"), &dag, &l, &s);
    }

    println!("\n-- alpha growth factor (paper default 1.5) --");
    for growth in [1.2f64, 1.5, 2.0] {
        let gl = GrowLocal::with_params(GrowLocalParams { growth, ..Default::default() });
        let s = gl.schedule(&dag, k);
        describe(&format!("GrowLocal(growth={growth})"), &dag, &l, &s);
    }

    println!("\n-- vertex-selection rule (Rule I ablation) --");
    for (label, priority) in [
        ("exclusive-then-id (Rule I)", VertexPriority::CoreExclusiveThenId),
        ("id-only", VertexPriority::IdOnly),
    ] {
        let gl = GrowLocal::with_params(GrowLocalParams { priority, ..Default::default() });
        let s = gl.schedule(&dag, k);
        describe(&format!("GrowLocal({label})"), &dag, &l, &s);
    }

    println!("\n-- all schedulers --");
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(GrowLocal::new()),
        Box::new(FunnelGrowLocal::for_dag(&dag, k)),
        Box::new(WavefrontScheduler),
        Box::new(HDagg::default()),
        Box::new(SpMp),
        Box::new(BspG::default()),
        Box::new(BlockParallel::new(4)),
    ];
    for sched in &schedulers {
        let s = sched.schedule(&dag, k);
        describe(sched.name(), &dag, &l, &s);
    }
    println!("\n(wavefront scheduling pays one barrier per level — on this matrix");
    println!(" that is thousands of barriers, which is exactly what GrowLocal avoids)");
}
