//! Exploring GrowLocal's parameter space and the baseline schedulers.
//!
//! ```text
//! cargo run --release --example scheduler_tuning
//! ```
//!
//! Sweeps the synchronization-cost parameter `L`, the `α` growth factor and
//! the vertex-selection rule on one hard (narrow-bandwidth) instance, and
//! compares all registered schedulers on supersteps, balance and modeled
//! cycles — a miniature of the paper's ablation studies. Every scheduler is
//! resolved from a registry spec string, so the sweeps double as a demo of
//! the `name:key=value` grammar.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sptrsv::core::registry::{self, ExecModel};
use sptrsv::core::CompiledSchedule;
use sptrsv::prelude::*;

/// Resolves a spec, schedules, simulates under the spec's execution model,
/// and prints the summary line — the full `name:key=value@model` grammar in
/// one helper.
fn run_spec(spec: &str, dag: &SolveDag, matrix: &CsrMatrix, k: usize) {
    let parsed = spec.parse().expect("spec follows the grammar");
    let model = registry::resolve_model(&parsed).expect("model is supported");
    let policy = registry::resolve_exec_policy(&parsed).expect("policy keys are valid");
    let sched = registry::build(&parsed, dag, k).expect("spec is registered");
    let s = sched.schedule(dag, k);
    s.validate(dag).expect("schedule must be valid");
    let stats = s.stats(dag);
    let profile = MachineProfile::intel_xeon_22();
    let serial = simulate_serial(matrix, &profile);
    let compiled = CompiledSchedule::from_schedule(&s);
    let par = sptrsv::exec::simulate_model(matrix, &compiled, model, None, &profile, policy);
    println!(
        "{spec:<38} supersteps {:>6}  imbalance {:>5.2}  modeled speed-up {:>5.2}x",
        s.n_supersteps(),
        stats.average_imbalance(),
        par.speedup_over(&serial)
    );
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(11);
    let l = sptrsv::sparse::gen::narrow_band_lower(30_000, 0.14, 10.0, &mut rng);
    let dag = SolveDag::from_lower_triangular(&l);
    println!(
        "narrow-bandwidth instance: n = {}, nnz = {}, wavefronts = {}\n",
        l.n_rows(),
        l.nnz(),
        wavefronts(&dag).n_fronts()
    );
    let k = 8;

    println!("-- synchronization-cost parameter L (paper default 500) --");
    for sync_cost in [50u64, 500, 5000] {
        run_spec(&format!("growlocal:sync={sync_cost}"), &dag, &l, k);
    }

    println!("\n-- alpha growth factor (paper default 1.5) --");
    for growth in [1.2f64, 1.5, 2.0] {
        run_spec(&format!("growlocal:growth={growth}"), &dag, &l, k);
    }

    println!("\n-- vertex-selection rule (Rule I ablation) --");
    for priority in ["rule1", "id-only"] {
        run_spec(&format!("growlocal:priority={priority}"), &dag, &l, k);
    }

    println!("\n-- execution models (the @model spec dimension) --");
    for model in ExecModel::ALL {
        run_spec(&format!("growlocal@{model}"), &dag, &l, k);
    }

    println!("\n-- execution policy: wait DAG and backoff (the §8 exploration) --");
    for spec in [
        "spmp@async",
        "spmp:sync=full@async",
        "spmp:backoff=yield@async",
        "spmp:sync=full,backoff=yield@async",
    ] {
        run_spec(spec, &dag, &l, k);
    }

    println!("\n-- nested scopes: tuning funnel-gl's inner GrowLocal --");
    for alpha in [4u64, 20, 80] {
        run_spec(&format!("funnel-gl:cap=auto,gl.alpha={alpha}"), &dag, &l, k);
    }

    println!("\n-- all registered schedulers (defaults) --");
    for info in registry::list() {
        run_spec(info.name, &dag, &l, k);
    }
    println!("\n(wavefront scheduling pays one barrier per level — on this matrix");
    println!(" that is thousands of barriers, which is exactly what GrowLocal avoids)");
}
